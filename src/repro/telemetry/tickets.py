"""Trouble tickets (RaSRF — Replaced-as-SSD-Related Failures).

Table I of the paper categorizes the tickets of drives that were
eventually replaced as SSD failures: 31.62% present as drive-level
problems and 68.38% as system-level ones. Two Table-I cells (Unable to
boot/shutdown, Bootloop) share a merged percentage in the paper's
layout; their sum is pinned by the 48.21% boot/shutdown subtotal and we
split it 18.57% / 5.00% — documented here and in DESIGN.md.

Tickets also carry the study's labeling difficulty: the *initial
maintenance time* (IMT) lags the actual failure because users do not
seek repair immediately — the lag MFPA's θ-threshold labeling corrects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.drive import DRIVE_LEVEL, SYSTEM_LEVEL, DriveHistory


@dataclass(frozen=True)
class TicketCategory:
    """One Table-I failure cause with its share of all RaSRF tickets."""

    failure_level: str
    category: str
    cause: str
    probability: float


RASRF_CATEGORIES: tuple[TicketCategory, ...] = (
    TicketCategory(DRIVE_LEVEL, "Components failure", "Storage drive failure", 0.3113),
    TicketCategory(DRIVE_LEVEL, "Components failure", "Firmware upgrade failure", 0.0042),
    TicketCategory(DRIVE_LEVEL, "Components failure", "Overtemperature", 0.0007),
    TicketCategory(SYSTEM_LEVEL, "Boot/Shutdown failure", "Blue/Black screen after startup", 0.2144),
    TicketCategory(SYSTEM_LEVEL, "Boot/Shutdown failure", "Unable to boot/shutdown", 0.1857),
    TicketCategory(SYSTEM_LEVEL, "Boot/Shutdown failure", "Bootloop", 0.0500),
    TicketCategory(SYSTEM_LEVEL, "Boot/Shutdown failure", "Stuck startup icon", 0.0320),
    TicketCategory(SYSTEM_LEVEL, "System running failure", "Response delay/blue screen", 0.0866),
    TicketCategory(SYSTEM_LEVEL, "System running failure", "Unauthorized system installation", 0.0543),
    TicketCategory(SYSTEM_LEVEL, "System running failure", "System partition damage", 0.0258),
    TicketCategory(SYSTEM_LEVEL, "System running failure", "Automatic shutdown/restart", 0.0194),
    TicketCategory(SYSTEM_LEVEL, "System running failure", "System upgrade/recovery failure", 0.0078),
    TicketCategory(SYSTEM_LEVEL, "Application error", "Apps crash/report errors/stuck", 0.0077),
)

_TOTAL = sum(c.probability for c in RASRF_CATEGORIES)
if abs(_TOTAL - 0.9999) > 0.002:  # pragma: no cover - catalog sanity
    raise AssertionError(f"RaSRF probabilities sum to {_TOTAL}, expected ~1")


@dataclass(frozen=True)
class TroubleTicket:
    """One after-sales record of a replaced SSD."""

    serial: int
    initial_maintenance_time: int
    """IMT — the day the drive reached the after-sales department."""
    failure_level: str
    category: str
    cause: str


class TicketGenerator:
    """Produces RaSRF tickets for failed drives.

    Parameters
    ----------
    mean_repair_lag_days:
        Mean of the lognormal failure -> repair lag. The paper's θ=7
        labeling threshold is tuned to this human behaviour.
    max_lag_days:
        Hard cap on the lag (a drive eventually gets repaired).
    """

    def __init__(self, mean_repair_lag_days: float = 5.0, max_lag_days: int = 45):
        if mean_repair_lag_days <= 0:
            raise ValueError("mean_repair_lag_days must be positive")
        self.mean_repair_lag_days = mean_repair_lag_days
        self.max_lag_days = max_lag_days

    def _conditional_probabilities(self, failure_level: str) -> np.ndarray:
        weights = np.array(
            [
                category.probability if category.failure_level == failure_level else 0.0
                for category in RASRF_CATEGORIES
            ]
        )
        return weights / weights.sum()

    def sample_lag(self, rng: np.random.Generator) -> int:
        """Days between actual failure and the repair visit."""
        # Lognormal with median ~3 days and a tail of procrastinators.
        mu = np.log(self.mean_repair_lag_days) - 0.5
        lag = int(rng.lognormal(mu, 0.9))
        return int(np.clip(lag, 0, self.max_lag_days))

    def generate(self, drive: DriveHistory, rng: np.random.Generator) -> TroubleTicket:
        """Create the ticket for one failed drive."""
        if not drive.failed:
            raise ValueError(f"drive {drive.serial} did not fail; no RaSRF ticket")
        probabilities = self._conditional_probabilities(drive.archetype)
        index = int(rng.choice(len(RASRF_CATEGORIES), p=probabilities))
        category = RASRF_CATEGORIES[index]
        lag = self.sample_lag(rng)
        return TroubleTicket(
            serial=drive.serial,
            initial_maintenance_time=drive.failure_day + lag,
            failure_level=category.failure_level,
            category=category.category,
            cause=category.cause,
        )

    def generate_all(
        self, drives: list[DriveHistory], rng: np.random.Generator
    ) -> list[TroubleTicket]:
        """Tickets for every failed drive in a fleet."""
        return [self.generate(drive, rng) for drive in drives if drive.failed]
