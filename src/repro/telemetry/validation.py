"""Dataset integrity validation.

Telemetry ingested from real collectors (or edited by hand) can violate
the invariants the pipeline assumes. :func:`validate_dataset` checks
them all and returns human-readable violations instead of letting a
broken assumption surface as a numpy error deep inside training.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.smart import SMART_COLUMNS

#: SMART counters that must be non-decreasing within a drive's history.
_MONOTONE_COLUMNS = (
    "s6_data_units_read",
    "s7_data_units_written",
    "s11_power_cycles",
    "s12_power_on_hours",
    "s13_unsafe_shutdowns",
    "s14_media_errors",
    "s15_error_log_entries",
)


def validate_dataset(dataset: TelemetryDataset, check_monotone: bool = True) -> list[str]:
    """Return a list of invariant violations (empty = dataset is sound).

    Checks:

    * rows sorted by (serial, day) with unique (serial, day) pairs,
    * every row's serial has drive metadata and vice versa,
    * failed drives have no records after their failure day,
    * every ticket references a failed drive and IMT >= failure day,
    * numeric telemetry is finite,
    * (optional) cumulative SMART counters never decrease.
    """
    violations: list[str] = []
    serial = dataset.columns["serial"]
    day = dataset.columns["day"]

    order = np.lexsort((day, serial))
    if not np.array_equal(order, np.arange(serial.size)):
        violations.append("rows are not sorted by (serial, day)")

    same = (serial[1:] == serial[:-1]) & (day[1:] == day[:-1])
    if np.any(same):
        violations.append(f"{int(same.sum())} duplicate (serial, day) rows")

    row_serials = set(np.unique(serial).tolist())
    meta_serials = set(dataset.drives)
    for missing in sorted(row_serials - meta_serials)[:5]:
        violations.append(f"serial {missing} has rows but no drive metadata")
    for orphan in sorted(meta_serials - row_serials)[:5]:
        violations.append(f"drive {orphan} has metadata but no rows")

    for target, meta in dataset.drives.items():
        if not meta.failed or target not in row_serials:
            continue
        days = dataset.drive_rows(target)["day"]
        if days[-1] > meta.failure_day:
            violations.append(
                f"drive {target} logs after its failure day "
                f"({int(days[-1])} > {meta.failure_day})"
            )

    failed = {s for s, m in dataset.drives.items() if m.failed}
    for ticket in dataset.tickets:
        if ticket.serial not in failed:
            violations.append(f"ticket for non-failed drive {ticket.serial}")
            continue
        failure_day = dataset.drives[ticket.serial].failure_day
        if ticket.initial_maintenance_time < failure_day:
            violations.append(
                f"ticket IMT {ticket.initial_maintenance_time} precedes "
                f"failure day {failure_day} for drive {ticket.serial}"
            )

    for column in SMART_COLUMNS:
        values = dataset.columns.get(column)
        if values is None:
            violations.append(f"missing SMART column {column}")
            continue
        if not np.all(np.isfinite(values)):
            violations.append(f"non-finite values in {column}")

    if check_monotone:
        new_drive = np.concatenate([[True], serial[1:] != serial[:-1]])
        for column in _MONOTONE_COLUMNS:
            values = dataset.columns.get(column)
            if values is None:
                continue
            decreasing = (np.diff(values) < -1e-9) & ~new_drive[1:]
            if np.any(decreasing):
                violations.append(
                    f"{column} decreases within a drive at "
                    f"{int(decreasing.sum())} rows"
                )
    return violations
