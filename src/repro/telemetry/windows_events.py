"""WindowsEvent (W) log catalog — Table III of the paper.

Nine disk-related Windows event IDs. The paper's collected feature group
uses five of them (Table V lists the W group as 5 features); its feature
selection singles out W_11, W_49, W_51 and W_161 as requiring special
attention. Background rates and failure gains below encode exactly that
structure: the informative events respond strongly to degradation, the
rest are near-noise.
"""

from __future__ import annotations

from repro.telemetry.events import EventCatalog, EventType

WINDOWS_EVENTS: tuple[EventType, ...] = (
    EventType(
        "W_7", "The device has a bad block", "w7_bad_block",
        background_rate=0.0015, failure_gain=0.35,
    ),
    EventType(
        "W_11", "The driver detects a controller error on Disk_i", "w11_controller_error",
        background_rate=0.0020, failure_gain=1.1,
    ),
    EventType(
        "W_15", "The Disk_i is not ready for access yet", "w15_not_ready",
        background_rate=0.0030, failure_gain=0.08,
    ),
    EventType(
        "W_49", "Configuring the page file for crash dump fails", "w49_pagefile_fail",
        background_rate=0.0010, failure_gain=0.9,
    ),
    EventType(
        "W_51", "An error is detected on device during a paging operation", "w51_paging_error",
        background_rate=0.0025, failure_gain=1.0,
    ),
    EventType(
        "W_52", "The driver detects that device has predicted it will fail", "w52_predicted_fail",
        background_rate=0.0002, failure_gain=0.5,
    ),
    EventType(
        "W_154", "IO operation at logical block address failed (hardware error)", "w154_io_hw_error",
        background_rate=0.0008, failure_gain=0.3,
    ),
    EventType(
        "W_157", "Disk has been surprisingly removed", "w157_surprise_removed",
        background_rate=0.0012, failure_gain=0.12,
    ),
    EventType(
        "W_161", "File System error during IO on database", "w161_fs_io_error",
        background_rate=0.0018, failure_gain=1.3,
    ),
)


class WindowsEventCatalog(EventCatalog):
    """Catalog of the Table-III Windows events."""

    def __init__(self):
        super().__init__(WINDOWS_EVENTS)


#: The five W features the paper's models consume (Table V, W group = 5).
MODEL_W_COLUMNS: tuple[str, ...] = (
    "w11_controller_error",
    "w49_pagefile_fail",
    "w51_paging_error",
    "w52_predicted_fail",
    "w161_fs_io_error",
)
