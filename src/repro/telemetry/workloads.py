"""User personas: structured heterogeneity in consumer usage.

The paper stresses that "the application usage habits of individual
users vary considerably" (§II challenge 4). Instead of one amorphous
usage distribution, this module models recognizable personas — office
machines that sleep on weekends, always-on enthusiast rigs, barely-used
casual laptops — and a :class:`PersonaUsageModel` that mixes them.
Plug it into :class:`~repro.telemetry.fleet.FleetConfig` via
``persona_weights``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.collection import UsagePattern


@dataclass(frozen=True)
class Persona:
    """One user archetype with jitter ranges for its parameters."""

    name: str
    boot_probability: tuple[float, float]
    weekend_factor: tuple[float, float]
    mean_daily_hours: tuple[float, float]
    vacation_rate: float
    mean_vacation_days: float

    def sample_pattern(self, rng: np.random.Generator) -> UsagePattern:
        return UsagePattern(
            boot_probability=float(
                np.clip(rng.uniform(*self.boot_probability), 0.05, 1.0)
            ),
            weekend_factor=float(rng.uniform(*self.weekend_factor)),
            vacation_rate=self.vacation_rate,
            mean_vacation_days=self.mean_vacation_days,
            mean_daily_hours=float(rng.uniform(*self.mean_daily_hours)),
        )


PERSONAS: dict[str, Persona] = {
    "office": Persona(
        name="office",
        boot_probability=(0.65, 0.85),
        weekend_factor=(0.05, 0.3),
        mean_daily_hours=(7.0, 10.0),
        vacation_rate=3.0,
        mean_vacation_days=8.0,
    ),
    "home": Persona(
        name="home",
        boot_probability=(0.45, 0.7),
        weekend_factor=(1.1, 1.5),
        mean_daily_hours=(2.5, 6.0),
        vacation_rate=2.0,
        mean_vacation_days=10.0,
    ),
    "enthusiast": Persona(
        name="enthusiast",
        boot_probability=(0.8, 0.98),
        weekend_factor=(1.0, 1.4),
        mean_daily_hours=(8.0, 14.0),
        vacation_rate=1.0,
        mean_vacation_days=6.0,
    ),
    "casual": Persona(
        name="casual",
        boot_probability=(0.15, 0.4),
        weekend_factor=(0.8, 1.3),
        mean_daily_hours=(1.0, 3.5),
        vacation_rate=3.0,
        mean_vacation_days=15.0,
    ),
}

#: A plausible consumer population mix.
DEFAULT_PERSONA_WEIGHTS: dict[str, float] = {
    "office": 0.35,
    "home": 0.35,
    "enthusiast": 0.12,
    "casual": 0.18,
}


class PersonaUsageModel:
    """Drop-in replacement for :class:`UsageModel` drawing from personas.

    Parameters
    ----------
    weights:
        persona name -> mixing weight (normalized internally).
    """

    def __init__(self, weights: dict[str, float] | None = None):
        weights = dict(DEFAULT_PERSONA_WEIGHTS if weights is None else weights)
        unknown = set(weights) - set(PERSONAS)
        if unknown:
            raise ValueError(f"unknown personas {sorted(unknown)}; known: {sorted(PERSONAS)}")
        if not weights:
            raise ValueError("weights must not be empty")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.names = sorted(weights)
        self.probabilities = np.array([weights[name] / total for name in self.names])

    def sample_persona(self, rng: np.random.Generator) -> Persona:
        index = int(rng.choice(len(self.names), p=self.probabilities))
        return PERSONAS[self.names[index]]

    def sample_pattern(self, rng: np.random.Generator) -> UsagePattern:
        """Matches the :class:`UsageModel` interface used by the fleet."""
        return self.sample_persona(rng).sample_pattern(rng)
