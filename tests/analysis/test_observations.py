"""Tests for the observation studies (Tables I/VI, Figs 2-6)."""

import numpy as np
import pytest

from repro.analysis.bathtub import bathtub_shape_summary, failure_time_distribution
from repro.analysis.cumulative_events import (
    cumulative_event_trajectories,
    mean_final_cumulative,
)
from repro.analysis.dataset_summary import dataset_summary_rows, replacement_rate_ordering
from repro.analysis.discontinuity import discontinuity_profile, drive_log_timelines
from repro.analysis.firmware_rates import (
    firmware_failure_rates,
    is_monotone_decreasing_per_vendor,
)
from repro.analysis.rasrf import level_shares, rasrf_breakdown


class TestRasrf:
    def test_rows_cover_catalog(self, small_fleet):
        rows = rasrf_breakdown(small_fleet)
        assert len(rows) == 13
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)

    def test_level_split_near_table1(self, small_fleet):
        shares = level_shares(small_fleet)
        # Expect ~32% drive-level / ~68% system-level (sampling noise).
        assert shares["drive_level"] == pytest.approx(0.32, abs=0.12)
        assert shares["system_level"] == pytest.approx(0.68, abs=0.12)

    def test_counts_match_tickets(self, small_fleet):
        rows = rasrf_breakdown(small_fleet)
        assert sum(row["count"] for row in rows) == len(small_fleet.tickets)

    def test_empty_tickets_raise(self, small_fleet):
        import copy

        empty = copy.copy(small_fleet)
        empty.tickets = []
        with pytest.raises(ValueError):
            rasrf_breakdown(empty)
        with pytest.raises(ValueError):
            level_shares(empty)


class TestBathtub:
    def test_distribution_shapes(self, small_fleet):
        result = failure_time_distribution(small_fleet, n_buckets=8)
        assert result["counts"].shape == (8,)
        assert result["edges"].shape == (9,)
        assert result["counts"].sum() == small_fleet.failed_serials().size
        assert result["hazard"].shape == (8,)

    def test_by_day_variant(self, small_fleet):
        result = failure_time_distribution(small_fleet, by="day")
        assert result["counts"].sum() == small_fleet.failed_serials().size

    def test_infant_mortality_visible(self, small_fleet):
        result = failure_time_distribution(small_fleet, n_buckets=9, by="day")
        summary = bathtub_shape_summary(result["counts"])
        assert summary["early"] > summary["middle"]

    def test_invalid_bucketing(self, small_fleet):
        with pytest.raises(ValueError):
            failure_time_distribution(small_fleet, by="moon_phase")

    def test_shape_summary_needs_buckets(self):
        with pytest.raises(ValueError):
            bathtub_shape_summary(np.array([1, 2]))


class TestFirmwareRates:
    def test_rows_sorted_by_ladder(self, mixed_fleet):
        rows = firmware_failure_rates(mixed_fleet)
        names = [row["firmware"] for row in rows]
        assert names == sorted(
            names, key=lambda n: (n.partition("_F_")[0], int(n.partition("_F_")[2]))
        )

    def test_population_accounting(self, mixed_fleet):
        rows = firmware_failure_rates(mixed_fleet)
        assert sum(row["n_drives"] for row in rows) == mixed_fleet.n_drives

    def test_earlier_firmware_fails_more_with_slack(self, mixed_fleet):
        rows = firmware_failure_rates(mixed_fleet)
        # Small fleets are noisy; allow generous slack but require the
        # broad trend.
        assert is_monotone_decreasing_per_vendor(rows, slack=0.15)

    def test_monotonicity_checker(self):
        rows = [
            {"vendor": "I", "version_index": 1, "failure_rate": 0.3},
            {"vendor": "I", "version_index": 2, "failure_rate": 0.1},
        ]
        assert is_monotone_decreasing_per_vendor(rows)
        rows[1]["failure_rate"] = 0.5
        assert not is_monotone_decreasing_per_vendor(rows)


class TestCumulativeEvents:
    def test_trajectories_structure(self, small_fleet):
        result = cumulative_event_trajectories(
            small_fleet, "w161_fs_io_error", n_faulty=3, n_healthy=3
        )
        assert len(result["faulty"]) == 3
        assert len(result["healthy"]) == 3
        for entry in result["faulty"] + result["healthy"]:
            assert np.all(np.diff(entry["cumulative"]) >= 0)
            assert np.all(entry["days_before_end"] <= 0)

    def test_faulty_accumulate_more(self, small_fleet):
        means = mean_final_cumulative(small_fleet, "w161_fs_io_error")
        assert means["faulty"] > means["healthy"]

    def test_bsod_b50_gap(self, small_fleet):
        from repro.telemetry.bsod import B_50_COLUMN

        means = mean_final_cumulative(small_fleet, B_50_COLUMN)
        assert means["faulty"] > means["healthy"]

    def test_unknown_column_raises(self, small_fleet):
        with pytest.raises(KeyError):
            cumulative_event_trajectories(small_fleet, "nope")

    def test_too_few_drives_raise(self, small_fleet):
        with pytest.raises(ValueError):
            cumulative_event_trajectories(
                small_fleet, "w161_fs_io_error", n_faulty=10**6
            )


class TestDiscontinuity:
    def test_profile_buckets(self, small_fleet):
        profile = discontinuity_profile(small_fleet)
        assert set(profile["gap_buckets"]) == {"0", "1-3", "4-9", ">=10"}
        assert profile["n_drives"] > 0
        assert 0.0 <= profile["share_with_long_gap"] <= 1.0

    def test_gaps_exist_in_consumer_data(self, small_fleet):
        profile = discontinuity_profile(small_fleet, faulty_only=False)
        assert profile["gap_buckets"]["1-3"] > 0

    def test_timelines(self, small_fleet):
        timelines = drive_log_timelines(small_fleet, limit=3)
        assert len(timelines) == 3
        for timeline in timelines:
            assert timeline["n_records"] == timeline["days"].size


class TestDatasetSummary:
    def test_rows_per_vendor(self, mixed_fleet):
        rows = dataset_summary_rows(mixed_fleet)
        assert [row["vendor"] for row in rows] == ["I", "II", "III", "IV"]
        for row in rows:
            assert row["flash_tech"] == "3D TLC"
            assert row["total"] == 60

    def test_ordering_helper(self, mixed_fleet):
        rows = dataset_summary_rows(mixed_fleet)
        ordering = replacement_rate_ordering(rows)
        assert ordering[0] == "I"
