"""Cross-module integration: analyses + reporting render without loss."""

import numpy as np

from repro.analysis import (
    dataset_summary_rows,
    discontinuity_profile,
    failure_time_distribution,
    firmware_failure_rates,
    rasrf_breakdown,
)
from repro.reporting import render_series, render_table


class TestAnalysesRender:
    def test_table1_renders(self, small_fleet):
        rows = rasrf_breakdown(small_fleet)
        text = render_table(
            ["Level", "Cause", "Share"],
            [[r["failure_level"], r["cause"], r["share"]] for r in rows],
        )
        assert "Storage drive failure" in text
        assert len(text.splitlines()) == len(rows) + 2

    def test_fig2_renders(self, small_fleet):
        result = failure_time_distribution(small_fleet, n_buckets=6)
        text = render_series(
            "hazard", [f"{e:.0f}" for e in result["edges"][:-1]], result["hazard"].tolist()
        )
        assert text.count("|") == 6

    def test_fig3_renders(self, mixed_fleet):
        rows = firmware_failure_rates(mixed_fleet)
        text = render_table(
            ["FW", "Rate"], [[r["firmware"], r["failure_rate"]] for r in rows]
        )
        for vendor in ("I_F_1", "II_F_1", "III_F_1", "IV_F_1"):
            assert vendor in text

    def test_table6_renders(self, mixed_fleet):
        rows = dataset_summary_rows(mixed_fleet)
        text = render_table(
            ["Manu.", "RR"], [[r["vendor"], r["sum_rr"]] for r in rows]
        )
        assert text.splitlines()[2].startswith("I ")

    def test_fig6_renders(self, small_fleet):
        profile = discontinuity_profile(small_fleet)
        text = render_table(
            ["Gap", "Count"], list(profile["gap_buckets"].items())
        )
        assert ">=10" in text

    def test_nan_metrics_render_safely(self):
        text = render_table(["x"], [[float("nan")]])
        assert "NaN" in text
        text = render_series("s", ["a"], [float("nan")])
        assert "NaN" in text

    def test_numeric_alignment_stable(self, small_fleet):
        # Table column widths are consistent across rows with mixed
        # magnitudes (regression guard for the exhibit files).
        rows = [[1, 0.5], [1000000, 0.00001], [3, float("nan")]]
        lines = render_table(["a", "b"], rows).splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1
