"""Unit tests for Kaplan-Meier survival analysis."""

import numpy as np
import pytest

from repro.analysis.survival import (
    fleet_survival,
    kaplan_meier,
    survival_at,
    survival_by_firmware,
    survival_by_vendor,
)


class TestKaplanMeier:
    def test_no_censoring_matches_empirical(self):
        durations = np.array([1.0, 2.0, 3.0, 4.0])
        observed = np.ones(4)
        km = kaplan_meier(durations, observed)
        np.testing.assert_allclose(km["survival"], [0.75, 0.5, 0.25, 0.0])

    def test_censoring_keeps_curve_higher(self):
        durations = np.array([1.0, 2.0, 3.0, 4.0])
        all_observed = kaplan_meier(durations, np.ones(4))
        half_censored = kaplan_meier(durations, np.array([1, 0, 1, 0]))
        assert survival_at(half_censored, 3.0) > survival_at(all_observed, 3.0)

    def test_survival_monotone_nonincreasing(self, rng):
        durations = rng.exponential(100, 300)
        observed = rng.integers(0, 2, 300)
        if not observed.any():
            observed[0] = 1
        km = kaplan_meier(durations, observed)
        assert np.all(np.diff(km["survival"]) <= 1e-12)
        assert np.all(km["survival"] >= 0)
        assert np.all(km["survival"] <= 1)

    def test_survival_at_before_first_event(self):
        km = kaplan_meier(np.array([10.0]), np.array([1]))
        assert survival_at(km, 5.0) == 1.0
        assert survival_at(km, 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            kaplan_meier(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            kaplan_meier(np.array([1.0]), np.array([1, 0]))
        with pytest.raises(ValueError):
            kaplan_meier(np.array([-1.0]), np.array([1]))


class TestFleetSurvival:
    def test_fleet_curve_reasonable(self, small_fleet):
        km = fleet_survival(small_fleet)
        # Most of the (boosted) fleet still survives the horizon.
        assert 0.3 < km["survival"][-1] < 1.0

    def test_by_firmware_ordering(self, small_fleet):
        curves = survival_by_firmware(small_fleet)
        # Vendor I's oldest firmware must survive worse than its newest
        # observed version at the study midpoint.
        names = sorted(curves)
        if "I_F_1" in curves and len(names) > 1:
            newest = names[-1]
            assert survival_at(curves["I_F_1"], 180) <= survival_at(
                curves[newest], 180
            ) + 0.05

    def test_by_vendor_matches_rr(self, mixed_fleet):
        curves = survival_by_vendor(mixed_fleet)
        assert "I" in curves
        # Vendor I (highest RR) survives worst at the horizon end.
        end_survival = {
            vendor: survival_at(km, 300) for vendor, km in curves.items()
        }
        assert end_survival["I"] == min(end_survival.values())
