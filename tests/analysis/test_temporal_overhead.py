"""Tests for the temporal-robustness and overhead analyses (Figs 12/16, 20)."""

import numpy as np
import pytest

from repro.analysis.overhead import STAGE_ORDER, overhead_rows
from repro.analysis.temporal import rolling_monthly_evaluation
from repro.core.pipeline import MFPA, MFPAConfig


@pytest.fixture(scope="module")
def fitted(small_fleet):
    model = MFPA(MFPAConfig())
    model.fit(small_fleet, train_end_day=240)
    model.evaluate(240, 300)  # populate prediction stage stats
    return model


class TestRollingEvaluation:
    def test_one_row_per_month(self, fitted):
        rows = rolling_monthly_evaluation(fitted, start_day=240, n_months=4)
        assert [row["month"] for row in rows] == [1, 2, 3, 4]
        for row in rows:
            assert row["period"][1] - row["period"][0] == 30

    def test_months_with_failures_have_metrics(self, fitted):
        rows = rolling_monthly_evaluation(fitted, start_day=240, n_months=4)
        evaluated = [row for row in rows if row["n_healthy"] > 0]
        assert evaluated, "expected at least one evaluable month"
        for row in evaluated:
            assert 0.0 <= row["fpr"] <= 1.0

    def test_out_of_range_months_nan(self, fitted):
        rows = rolling_monthly_evaluation(fitted, start_day=10_000, n_months=2)
        assert all(np.isnan(row["tpr"]) for row in rows)


class TestOverhead:
    def test_rows_in_pipeline_order(self, fitted):
        rows = overhead_rows(fitted)
        stages = [row["stage"] for row in rows]
        assert stages == [s for s in STAGE_ORDER if s in stages]
        assert "prediction" in stages

    def test_throughput_positive(self, fitted):
        for row in overhead_rows(fitted):
            assert row["seconds"] >= 0
            assert row["items_per_second"] > 0

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError):
            overhead_rows(MFPA())

    def test_feature_engineering_dominant_items(self, fitted):
        # Fig 20: feature engineering touches the most data items.
        rows = {row["stage"]: row for row in overhead_rows(fitted)}
        assert (
            rows["feature_engineering"]["n_items"]
            >= rows["training"]["n_items"]
        )
