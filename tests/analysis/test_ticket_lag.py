"""Unit tests for the repair-lag analysis behind the θ choice."""

import numpy as np
import pytest

from repro.analysis.ticket_lag import repair_lag_distribution, theta_coverage


class TestRepairLag:
    def test_distribution_fields(self, small_fleet):
        stats = repair_lag_distribution(small_fleet)
        assert stats["n_tickets"] == len(small_fleet.tickets)
        assert 0 <= stats["median"] <= stats["p90"] <= stats["max"]
        assert stats["lags"].min() >= 0

    def test_median_lag_small(self, small_fleet):
        # The simulated lognormal lag puts the median within a week —
        # the behaviour that makes θ=7 the sweet spot.
        stats = repair_lag_distribution(small_fleet)
        assert stats["median"] <= 7

    def test_theta_coverage_monotone(self, small_fleet):
        rows = theta_coverage(small_fleet)
        shares = [row["share_within"] for row in rows]
        assert all(b >= a for a, b in zip(shares, shares[1:]))
        assert shares[-1] <= 1.0

    def test_theta_7_covers_majority(self, small_fleet):
        rows = {row["theta"]: row["share_within"] for row in theta_coverage(small_fleet)}
        assert rows[7] >= 0.5

    def test_empty_tickets_raise(self, small_fleet):
        import copy

        empty = copy.copy(small_fleet)
        empty.tickets = []
        with pytest.raises(ValueError):
            repair_lag_distribution(empty)
