"""Shared fixtures: small, session-scoped synthetic fleets.

Fleet simulation is the expensive part of most tests, so the fixtures
are simulated once per session; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preprocess import preprocess
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_fleet():
    """~200 drives of vendor I with boosted failures; 360-day horizon."""
    config = FleetConfig(
        mix=VendorMix({"I": 200}),
        horizon_days=360,
        failure_boost=25.0,
        seed=42,
    )
    return simulate_fleet(config)


@pytest.fixture(scope="session")
def mixed_fleet():
    """All four vendors, 60 drives each, boosted failures."""
    config = FleetConfig(
        mix=VendorMix.uniform(60),
        horizon_days=360,
        failure_boost=30.0,
        seed=7,
    )
    return simulate_fleet(config)


@pytest.fixture(scope="session")
def prepared_fleet(small_fleet):
    """The small fleet after the full §III-C(1) preprocessing stage."""
    prepared, report, encoder = preprocess(small_fleet)
    return prepared, report, encoder


@pytest.fixture(scope="session")
def binary_blobs():
    """A simple separable 2-class dataset for estimator tests."""
    generator = np.random.default_rng(0)
    n = 300
    X0 = generator.normal(0.0, 1.0, (n, 8))
    X1 = generator.normal(1.5, 1.0, (n, 8))
    X = np.vstack([X0, X1])
    y = np.array([0] * n + [1] * n)
    order = generator.permutation(2 * n)
    return X[order], y[order]
