"""Unit tests for the SMART-threshold detector and prior-work recipes."""

import numpy as np
import pytest

from repro.core.baselines import MFPA_RECIPE, SOTA_RECIPES, SmartThresholdDetector
from repro.core.labeling import FailureTimeIdentifier
from repro.core.pipeline import MFPA, MFPAConfig
from repro.ml.metrics import false_positive_rate, true_positive_rate


class TestSmartThresholdDetector:
    def test_rule_directions_validated(self):
        with pytest.raises(ValueError):
            SmartThresholdDetector(rules=(("s1_critical_warning", 1.0, "sideways"),))

    def test_predict_rows_flags_crossings(self):
        detector = SmartThresholdDetector(
            rules=(("s14_media_errors", 10.0, "ge"), ("s3_available_spare", 5.0, "le"))
        )
        columns = {
            "s14_media_errors": np.array([0.0, 50.0, 3.0]),
            "s3_available_spare": np.array([90.0, 80.0, 2.0]),
        }
        alarms = detector.predict_rows(columns, np.arange(3))
        np.testing.assert_array_equal(alarms, [0, 1, 1])

    def test_low_tpr_low_fpr_on_fleet(self, prepared_fleet):
        # The paper: vendor threshold detectors catch only 3-10% of
        # failures (here somewhat more because our drive-level failures
        # are strongly expressed) at a near-zero false-alarm rate.
        prepared, _, _ = prepared_fleet
        failure_times = FailureTimeIdentifier(theta=7).identify(prepared)
        detector = SmartThresholdDetector()
        y_true, y_pred = detector.evaluate_drives(prepared, failure_times, 0, 360)
        tpr = true_positive_rate(y_true, y_pred)
        fpr = false_positive_rate(y_true, y_pred)
        assert fpr <= 0.02
        assert tpr < 0.85  # clearly below the ML models

    def test_threshold_detector_weaker_than_mfpa(self, prepared_fleet, small_fleet):
        prepared, _, _ = prepared_fleet
        failure_times = FailureTimeIdentifier(theta=7).identify(prepared)
        y_true, y_pred = SmartThresholdDetector().evaluate_drives(
            prepared, failure_times, 240, 360
        )
        threshold_tpr = true_positive_rate(y_true, y_pred)

        model = MFPA(MFPAConfig())
        model.fit(small_fleet, train_end_day=240)
        mfpa_tpr = model.evaluate(240, 360).drive_report.tpr
        assert mfpa_tpr > threshold_tpr


class TestRecipes:
    def test_four_sota_recipes(self):
        assert len(SOTA_RECIPES) == 4
        names = {recipe.name for recipe in SOTA_RECIPES}
        assert names == {
            "ErrorLog-RF",
            "Transfer-GBDT",
            "Interpretable-Tree",
            "Lifespan-NB",
        }

    def test_recipes_cite_prior_work(self):
        for recipe in SOTA_RECIPES:
            assert "[" in recipe.citation  # carries the reference index

    def test_recipe_estimators_fresh_instances(self):
        recipe = SOTA_RECIPES[0]
        assert recipe.make_estimator() is not recipe.make_estimator()

    def test_mfpa_recipe_uses_all_dimensions(self):
        columns = MFPA_RECIPE.columns
        assert "firmware_code" in columns
        assert any(c.startswith("cum_w") for c in columns)
        assert any(c.startswith("cum_b") for c in columns)
        assert len(columns) == 45

    def test_recipes_runnable_through_pipeline(self, small_fleet):
        recipe = SOTA_RECIPES[3]  # the cheap NB one
        config = MFPAConfig(
            feature_columns=recipe.columns,
            algorithm=recipe.make_estimator(),
        )
        model = MFPA(config)
        model.fit(small_fleet, train_end_day=240)
        result = model.evaluate(240, 360)
        assert result.drive_report.n_samples > 0
