"""Unit tests for the client-side streaming predictor.

The key property: for any drive, feeding its raw daily readings through
``ClientPredictor.observe`` reproduces exactly the probabilities the
batch pipeline computes for the same rows.
"""

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.core.client import ClientPredictor
from repro.telemetry.dataset import B_COLUMNS, W_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS


@pytest.fixture(scope="module")
def fitted(small_fleet):
    model = MFPA(MFPAConfig())
    model.fit(small_fleet, train_end_day=240)
    return model


def _raw_readings(model, serial):
    """Reconstruct the raw daily readings a client collector would emit."""
    rows = model.dataset_.drive_rows(serial)
    readings = []
    for i in range(rows["day"].size):
        reading = {"firmware": rows["firmware"][i]}
        for column in SMART_COLUMNS:
            reading[column] = float(rows[column][i])
        for column in (*W_COLUMNS, *B_COLUMNS):
            reading[column] = float(rows[column][i])
        readings.append((int(rows["day"][i]), reading))
    return readings


class TestEquivalenceWithBatch:
    def test_probabilities_match_batch_pipeline(self, fitted):
        serial = int(fitted.dataset_.failed_serials()[0])
        base = fitted.dataset_._row_slices()[serial].start
        n = fitted.dataset_.drive_rows(serial)["day"].size
        batch = fitted.predict_proba_rows(base + np.arange(n))

        predictor = ClientPredictor.from_model(fitted)
        streaming = [
            predictor.observe(serial, day, reading)
            for day, reading in _raw_readings(fitted, serial)
        ]
        np.testing.assert_allclose(streaming, batch, atol=1e-12)

    def test_equivalence_with_history_stacking(self, small_fleet):
        config = MFPAConfig(
            feature_columns=(
                "s14_media_errors",
                "s15_error_log_entries",
                "cum_w161_fs_io_error",
            ),
            history_length=3,
        )
        model = MFPA(config)
        model.fit(small_fleet, train_end_day=240)
        serial = int(model.dataset_.healthy_serials()[0])
        base = model.dataset_._row_slices()[serial].start
        n = model.dataset_.drive_rows(serial)["day"].size
        batch = model.predict_proba_rows(base + np.arange(n))

        predictor = ClientPredictor.from_model(model)
        streaming = [
            predictor.observe(serial, day, reading)
            for day, reading in _raw_readings(model, serial)
        ]
        np.testing.assert_allclose(streaming, batch, atol=1e-12)


class TestStreamingBehaviour:
    def test_out_of_order_rejected(self, fitted):
        predictor = ClientPredictor.from_model(fitted)
        serial = int(fitted.dataset_.serials[0])
        readings = _raw_readings(fitted, serial)
        predictor.observe(serial, *readings[1])
        with pytest.raises(ValueError, match="out-of-order"):
            predictor.observe(serial, *readings[0])

    def test_missing_field_rejected(self, fitted):
        predictor = ClientPredictor.from_model(fitted)
        with pytest.raises(KeyError):
            predictor.observe(1, 0, {"firmware": "I_F_1"})

    def test_failed_observe_leaves_state_retryable(self, fitted):
        """Regression: a rejected reading must not half-mutate the drive.

        Previously the cumulative W/B counters and ``last_day`` were
        updated *before* ``_feature_vector`` could raise, so retrying
        with the corrected reading double-counted events and tripped the
        out-of-order check."""
        serial = int(fitted.dataset_.serials[0])
        readings = _raw_readings(fitted, serial)
        day, good = readings[0]

        predictor = ClientPredictor.from_model(fitted)
        broken = dict(good)
        del broken[SMART_COLUMNS[0]]
        with pytest.raises(KeyError):
            predictor.observe(serial, day, broken)

        # The same day must still be accepted (last_day untouched) and
        # produce exactly what a fresh predictor produces (cumulative
        # counters untouched).
        retried = predictor.observe(serial, day, good)
        fresh = ClientPredictor.from_model(fitted)
        assert retried == fresh.observe(serial, day, good)

    def test_failed_observe_does_not_double_count_events(self, fitted):
        serial = int(fitted.dataset_.serials[0])
        readings = _raw_readings(fitted, serial)
        day0, good0 = readings[0]
        day1, good1 = readings[1]

        predictor = ClientPredictor.from_model(fitted)
        predictor.observe(serial, day0, good0)
        broken = dict(good1)
        del broken["firmware"]
        with pytest.raises(KeyError):
            predictor.observe(serial, day1, broken)
        retried = predictor.observe(serial, day1, good1)

        fresh = ClientPredictor.from_model(fitted)
        fresh.observe(serial, day0, good0)
        assert retried == fresh.observe(serial, day1, good1)

    def test_alarm_uses_threshold(self, fitted):
        predictor = ClientPredictor.from_model(fitted)
        serial = int(fitted.dataset_.failed_serials()[0])
        readings = _raw_readings(fitted, serial)
        alarmed, probability = predictor.alarm(serial, *readings[-1])
        assert alarmed == (probability >= predictor.threshold)

    def test_faulty_drive_eventually_alarms(self, fitted):
        predictor = ClientPredictor.from_model(fitted)
        # Find a faulty drive whose failure the batch model detects.
        for serial in fitted.dataset_.failed_serials():
            readings = _raw_readings(fitted, int(serial))
            probabilities = [
                predictor.observe(int(serial), day, reading)
                for day, reading in readings
            ]
            if max(probabilities) >= 0.5:
                assert probabilities[-1] >= probabilities[0] - 0.2
                return
        pytest.fail("no faulty drive raised an alarm")

    def test_forget_clears_state(self, fitted):
        predictor = ClientPredictor.from_model(fitted)
        serial = int(fitted.dataset_.serials[0])
        readings = _raw_readings(fitted, serial)
        predictor.observe(serial, *readings[0])
        assert predictor.n_tracked_drives == 1
        predictor.forget(serial)
        assert predictor.n_tracked_drives == 0
        # After forgetting, the old day is acceptable again.
        predictor.observe(serial, *readings[0])

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError):
            ClientPredictor.from_model(MFPA())

    def test_prediction_latency_is_client_grade(self, fitted):
        import time

        predictor = ClientPredictor.from_model(fitted)
        serial = int(fitted.dataset_.serials[0])
        readings = _raw_readings(fitted, serial)
        # Warm up, then time a single observation.
        predictor.observe(serial, *readings[0])
        started = time.perf_counter()
        predictor.observe(serial, *readings[1])
        elapsed = time.perf_counter() - started
        # The paper claims microsecond-level client prediction; our
        # numpy forest clears single-digit milliseconds comfortably.
        assert elapsed < 0.05
