"""Unit tests for the fleet-monitoring deployment loop."""

import numpy as np
import pytest

from repro.core.deployment import (
    Alarm,
    FleetMonitor,
    MonitoringWindow,
    RetrainPolicy,
    simulate_operation,
    summarize_windows,
)
from repro.core.pipeline import MFPAConfig


class TestRetrainPolicy:
    def test_defaults(self):
        policy = RetrainPolicy()
        assert policy.interval_days == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            RetrainPolicy(interval_days=0)
        with pytest.raises(ValueError):
            RetrainPolicy(min_new_failures=-1)


class TestFleetMonitor:
    @pytest.fixture(scope="class")
    def monitor(self, small_fleet):
        monitor = FleetMonitor(policy=RetrainPolicy(interval_days=10_000))
        monitor.start(small_fleet, train_end_day=240)
        return monitor

    def test_requires_start(self):
        with pytest.raises(RuntimeError, match="start"):
            FleetMonitor().score_window(0, 30)

    def test_window_scores_drives(self, monitor):
        window = monitor.score_window(240, 270)
        assert window.n_drives_scored > 0
        assert not window.retrained
        for alarm in window.alarms:
            assert alarm.probability >= monitor.alarm_threshold
            assert 240 <= alarm.day < 270

    def test_alarms_deduplicated(self, small_fleet):
        monitor = FleetMonitor(policy=RetrainPolicy(interval_days=10_000))
        monitor.start(small_fleet, train_end_day=240)
        first = monitor.score_window(240, 300)
        second = monitor.score_window(240, 300)  # same window again
        alarmed_first = {alarm.serial for alarm in first.alarms}
        alarmed_second = {alarm.serial for alarm in second.alarms}
        assert not alarmed_first & alarmed_second

    def test_invalid_window(self, monitor):
        with pytest.raises(ValueError):
            monitor.score_window(300, 300)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FleetMonitor(alarm_threshold=1.5)

    def test_retrain_fires_on_schedule(self, small_fleet):
        monitor = FleetMonitor(
            policy=RetrainPolicy(interval_days=30, min_new_failures=0)
        )
        monitor.start(small_fleet, train_end_day=200)
        window = monitor.score_window(260, 290)
        assert window.retrained
        assert monitor._last_trained_day == 260

    def test_retrain_skipped_without_new_failures(self, small_fleet):
        monitor = FleetMonitor(
            policy=RetrainPolicy(interval_days=30, min_new_failures=10_000)
        )
        monitor.start(small_fleet, train_end_day=200)
        window = monitor.score_window(260, 290)
        assert not window.retrained


class TestRetrainPolicyEdges:
    def test_min_new_failures_zero_retrains_on_schedule(self, small_fleet):
        """With min_new_failures=0 the schedule alone triggers retraining,
        even when not a single new failure arrived since the last fit."""
        monitor = FleetMonitor(
            policy=RetrainPolicy(interval_days=30, min_new_failures=0)
        )
        monitor.start(small_fleet, train_end_day=200)
        known_at_start = monitor._failures_at_training
        # A window starting exactly one interval later must retrain even
        # if the failure count is unchanged.
        assert monitor._maybe_retrain(230)
        assert monitor._last_trained_day == 230
        assert monitor._failures_at_training >= known_at_start

    def test_retrain_exactly_at_interval_boundary(self, small_fleet):
        monitor = FleetMonitor(
            policy=RetrainPolicy(interval_days=30, min_new_failures=0)
        )
        monitor.start(small_fleet, train_end_day=200)
        assert not monitor._maybe_retrain(229)  # one day early: no
        assert monitor._maybe_retrain(230)  # exactly interval_days: yes

    def test_failures_at_training_tracks_consecutive_retrains(self, small_fleet):
        monitor = FleetMonitor(
            policy=RetrainPolicy(interval_days=30, min_new_failures=0)
        )
        monitor.start(small_fleet, train_end_day=200)

        def failures_before(day):
            return sum(
                1 for d in monitor.model.failure_times_.values() if d < day
            )

        assert monitor._maybe_retrain(230)
        assert monitor._failures_at_training == failures_before(230)
        assert monitor._maybe_retrain(260)
        assert monitor._failures_at_training == failures_before(260)
        # immediately after a retrain, another one is not yet due
        assert not monitor._maybe_retrain(261)


class TestSummarizeWindows:
    def _window(self, alarms):
        return MonitoringWindow(
            start_day=240, end_day=270, alarms=alarms, n_drives_scored=1, retrained=False
        )

    def test_unknown_serial_alarm_counted_separately(self, small_fleet):
        ghost = Alarm(serial=987_654_321, day=250, probability=0.9)
        summary = summarize_windows(
            [self._window([ghost])], small_fleet, start_day=240, end_day=360
        )
        assert summary.unknown_serial_alarms == 1
        assert summary.false_alarms == 0
        assert summary.true_alarms == 0

    def test_known_healthy_serial_still_false_alarm(self, small_fleet):
        healthy = int(small_fleet.healthy_serials()[0])
        alarm = Alarm(serial=healthy, day=250, probability=0.9)
        summary = summarize_windows(
            [self._window([alarm])], small_fleet, start_day=240, end_day=360
        )
        assert summary.false_alarms == 1
        assert summary.unknown_serial_alarms == 0

    def test_known_failed_serial_true_alarm_with_lead_time(self, small_fleet):
        failed = next(
            meta
            for meta in small_fleet.drives.values()
            if meta.failed and meta.failure_day >= 250
        )
        alarm = Alarm(serial=failed.serial, day=250, probability=0.9)
        summary = summarize_windows(
            [self._window([alarm])], small_fleet, start_day=240, end_day=360
        )
        assert summary.true_alarms == 1
        assert summary.lead_times == [failed.failure_day - 250]


class TestSimulateOperation:
    def test_summary_accounting(self, small_fleet):
        summary = simulate_operation(
            small_fleet,
            config=MFPAConfig(),
            start_day=240,
            end_day=360,
            window_days=30,
        )
        assert len(summary.windows) == 4
        assert summary.n_alarms == summary.true_alarms + summary.false_alarms
        assert 0.0 <= summary.recall <= 1.0 or np.isnan(summary.recall)

    def test_catches_most_failures_with_lead_time(self, small_fleet):
        summary = simulate_operation(
            small_fleet, start_day=240, end_day=360, window_days=30
        )
        assert summary.recall >= 0.6
        if summary.lead_times:
            assert summary.median_lead_time >= 0

    def test_higher_threshold_fewer_alarms(self, small_fleet):
        lenient = simulate_operation(
            small_fleet, start_day=240, end_day=360, alarm_threshold=0.3
        )
        strict = simulate_operation(
            small_fleet, start_day=240, end_day=360, alarm_threshold=0.95
        )
        assert strict.n_alarms <= lenient.n_alarms

    def test_empty_alarm_precision_nan(self):
        from repro.core.deployment import OperationSummary

        summary = OperationSummary(
            windows=[], true_alarms=0, false_alarms=0, missed_failures=0
        )
        assert np.isnan(summary.precision)
        assert np.isnan(summary.median_lead_time)
