"""Unit tests for the fleet-monitoring deployment loop."""

import numpy as np
import pytest

from repro.core.deployment import (
    FleetMonitor,
    RetrainPolicy,
    simulate_operation,
)
from repro.core.pipeline import MFPAConfig


class TestRetrainPolicy:
    def test_defaults(self):
        policy = RetrainPolicy()
        assert policy.interval_days == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            RetrainPolicy(interval_days=0)
        with pytest.raises(ValueError):
            RetrainPolicy(min_new_failures=-1)


class TestFleetMonitor:
    @pytest.fixture(scope="class")
    def monitor(self, small_fleet):
        monitor = FleetMonitor(policy=RetrainPolicy(interval_days=10_000))
        monitor.start(small_fleet, train_end_day=240)
        return monitor

    def test_requires_start(self):
        with pytest.raises(RuntimeError, match="start"):
            FleetMonitor().score_window(0, 30)

    def test_window_scores_drives(self, monitor):
        window = monitor.score_window(240, 270)
        assert window.n_drives_scored > 0
        assert not window.retrained
        for alarm in window.alarms:
            assert alarm.probability >= monitor.alarm_threshold
            assert 240 <= alarm.day < 270

    def test_alarms_deduplicated(self, small_fleet):
        monitor = FleetMonitor(policy=RetrainPolicy(interval_days=10_000))
        monitor.start(small_fleet, train_end_day=240)
        first = monitor.score_window(240, 300)
        second = monitor.score_window(240, 300)  # same window again
        alarmed_first = {alarm.serial for alarm in first.alarms}
        alarmed_second = {alarm.serial for alarm in second.alarms}
        assert not alarmed_first & alarmed_second

    def test_invalid_window(self, monitor):
        with pytest.raises(ValueError):
            monitor.score_window(300, 300)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            FleetMonitor(alarm_threshold=1.5)

    def test_retrain_fires_on_schedule(self, small_fleet):
        monitor = FleetMonitor(
            policy=RetrainPolicy(interval_days=30, min_new_failures=0)
        )
        monitor.start(small_fleet, train_end_day=200)
        window = monitor.score_window(260, 290)
        assert window.retrained
        assert monitor._last_trained_day == 260

    def test_retrain_skipped_without_new_failures(self, small_fleet):
        monitor = FleetMonitor(
            policy=RetrainPolicy(interval_days=30, min_new_failures=10_000)
        )
        monitor.start(small_fleet, train_end_day=200)
        window = monitor.score_window(260, 290)
        assert not window.retrained


class TestSimulateOperation:
    def test_summary_accounting(self, small_fleet):
        summary = simulate_operation(
            small_fleet,
            config=MFPAConfig(),
            start_day=240,
            end_day=360,
            window_days=30,
        )
        assert len(summary.windows) == 4
        assert summary.n_alarms == summary.true_alarms + summary.false_alarms
        assert 0.0 <= summary.recall <= 1.0 or np.isnan(summary.recall)

    def test_catches_most_failures_with_lead_time(self, small_fleet):
        summary = simulate_operation(
            small_fleet, start_day=240, end_day=360, window_days=30
        )
        assert summary.recall >= 0.6
        if summary.lead_times:
            assert summary.median_lead_time >= 0

    def test_higher_threshold_fewer_alarms(self, small_fleet):
        lenient = simulate_operation(
            small_fleet, start_day=240, end_day=360, alarm_threshold=0.3
        )
        strict = simulate_operation(
            small_fleet, start_day=240, end_day=360, alarm_threshold=0.95
        )
        assert strict.n_alarms <= lenient.n_alarms

    def test_empty_alarm_precision_nan(self):
        from repro.core.deployment import OperationSummary

        summary = OperationSummary(
            windows=[], true_alarms=0, false_alarms=0, missed_failures=0
        )
        assert np.isnan(summary.precision)
        assert np.isnan(summary.median_lead_time)
