"""Unit tests for derived delta/rolling-mean features."""

import numpy as np
import pytest

from repro.core.derived import (
    DEFAULT_DERIVE_COLUMNS,
    _grouped_diff,
    _grouped_rolling_mean,
    add_derived_features,
)
from repro.core.preprocess import preprocess


class TestGroupedDiff:
    def test_single_group(self):
        values = np.array([1.0, 3.0, 6.0])
        starts = np.array([True, False, False])
        np.testing.assert_allclose(_grouped_diff(values, starts), [0, 2, 3])

    def test_resets_at_boundaries(self):
        values = np.array([1.0, 3.0, 100.0, 104.0])
        starts = np.array([True, False, True, False])
        np.testing.assert_allclose(_grouped_diff(values, starts), [0, 2, 0, 4])


class TestGroupedRollingMean:
    def test_full_window(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        starts = np.array([True, False, False, False])
        result = _grouped_rolling_mean(values, starts, window=2)
        np.testing.assert_allclose(result, [1.0, 1.5, 2.5, 3.5])

    def test_partial_windows_at_group_start(self):
        values = np.array([4.0, 8.0])
        starts = np.array([True, False])
        result = _grouped_rolling_mean(values, starts, window=5)
        np.testing.assert_allclose(result, [4.0, 6.0])

    def test_never_crosses_groups(self):
        values = np.array([10.0, 10.0, 0.0, 0.0])
        starts = np.array([True, False, True, False])
        result = _grouped_rolling_mean(values, starts, window=3)
        np.testing.assert_allclose(result, [10.0, 10.0, 0.0, 0.0])


class TestAddDerivedFeatures:
    @pytest.fixture(scope="class")
    def derived(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        return add_derived_features(prepared)

    def test_adds_expected_columns(self, derived):
        dataset, added = derived
        assert len(added) == 2 * len(DEFAULT_DERIVE_COLUMNS)
        for name in added:
            assert name in dataset.columns
            assert name.startswith(("d1_", "rm7_"))

    def test_delta_matches_manual_per_drive(self, derived):
        dataset, _ = derived
        serial = int(dataset.serials[5])
        rows = dataset.drive_rows(serial)
        manual = np.diff(rows["s12_power_on_hours"], prepend=rows["s12_power_on_hours"][0])
        np.testing.assert_allclose(rows["d1_s12_power_on_hours"], manual)

    def test_deltas_are_age_stationary(self, derived):
        # The whole point: raw power-on-hours drifts with fleet age;
        # its delta does not.
        dataset, _ = derived
        from repro.core.drift import population_stability_index

        day = dataset.columns["day"]
        early = (day >= 60) & (day < 180)
        late = (day >= 240) & (day < 360)
        raw = dataset.columns["s12_power_on_hours"]
        delta = dataset.columns["d1_s12_power_on_hours"]
        raw_psi = population_stability_index(raw[early], raw[late])
        delta_psi = population_stability_index(delta[early], delta[late])
        assert delta_psi < raw_psi / 5

    def test_missing_column_raises(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        with pytest.raises(KeyError):
            add_derived_features(prepared, columns=("nope",))

    def test_invalid_window(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        with pytest.raises(ValueError):
            add_derived_features(prepared, rolling_window=1)


class TestPipelineIntegration:
    def test_derived_features_in_pipeline(self, small_fleet):
        from repro.core import MFPA, MFPAConfig

        model = MFPA(MFPAConfig(derived_features=True))
        model.fit(small_fleet, train_end_day=240)
        assert any(c.startswith("d1_") for c in model.assembler_.columns)
        result = model.evaluate(240, 360)
        assert result.drive_report.tpr >= 0.7

    def test_replace_mode_drops_raw_counters(self, small_fleet):
        from repro.core import MFPA, MFPAConfig

        model = MFPA(MFPAConfig(derived_features=True, derived_mode="replace"))
        model.fit(small_fleet, train_end_day=240)
        assert "s12_power_on_hours" not in model.assembler_.columns
        assert "d1_s12_power_on_hours" in model.assembler_.columns

    def test_invalid_derived_mode_rejected(self):
        from repro.core import MFPAConfig

        with pytest.raises(ValueError, match="derived_mode"):
            MFPAConfig(derived_mode="sideways")

    def test_replace_diet_rescues_bayes(self, small_fleet):
        """Swapping the drifting counters for their deltas rescues
        Gaussian NB without feature selection (diagnosed in
        test_pipeline): appending is not enough, the raw counters
        dominate the joint likelihood until they are removed."""
        from repro.core import MFPA, MFPAConfig
        from repro.ml import GaussianNaiveBayes

        raw = MFPA(MFPAConfig(algorithm=GaussianNaiveBayes()))
        raw.fit(small_fleet, train_end_day=240)
        raw_auc = raw.evaluate(240, 360).drive_report.auc

        derived = MFPA(
            MFPAConfig(
                algorithm=GaussianNaiveBayes(),
                derived_features=True,
                derived_mode="replace",
            )
        )
        derived.fit(small_fleet, train_end_day=240)
        derived_auc = derived.evaluate(240, 360).drive_report.auc
        assert derived_auc >= raw_auc
