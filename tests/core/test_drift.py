"""Unit tests for feature-drift measurement (PSI)."""

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.core.drift import (
    FeatureDrift,
    drifted_columns,
    feature_drift_report,
    population_stability_index,
)


class TestPSI:
    def test_identical_samples_near_zero(self, rng):
        sample = rng.normal(0, 1, 5000)
        assert population_stability_index(sample, sample) < 1e-9

    def test_same_distribution_small(self, rng):
        a = rng.normal(0, 1, 5000)
        b = rng.normal(0, 1, 5000)
        assert population_stability_index(a, b) < 0.02

    def test_shifted_distribution_large(self, rng):
        a = rng.normal(0, 1, 5000)
        b = rng.normal(2.0, 1, 5000)
        assert population_stability_index(a, b) > 0.25

    def test_scale_change_detected(self, rng):
        a = rng.normal(0, 1, 5000)
        b = rng.normal(0, 3, 5000)
        assert population_stability_index(a, b) > 0.1

    def test_constant_feature_scores_zero(self):
        a = np.full(100, 7.0)
        b = np.full(100, 7.0)
        assert population_stability_index(a, b) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            population_stability_index(np.array([]), np.ones(3))
        with pytest.raises(ValueError):
            population_stability_index(np.ones(3), np.ones(3), n_bins=1)


class TestFleetDrift:
    @pytest.fixture(scope="class")
    def fitted(self, small_fleet):
        model = MFPA(MFPAConfig())
        model.fit(small_fleet, train_end_day=240)
        return model

    def test_report_covers_features(self, fitted):
        report = feature_drift_report(fitted, (120, 240), (240, 360))
        assert {d.column for d in report} == set(fitted.assembler_.columns)
        psis = [d.psi for d in report]
        assert psis == sorted(psis, reverse=True)

    def test_cumulative_counters_drift_most(self, fitted):
        # Power-on hours / data written grow with fleet age: they are
        # the drifting features that force model iteration (Fig 12).
        report = feature_drift_report(fitted, (120, 240), (240, 360))
        top5 = {d.column for d in report[:5]}
        growing = {
            "s12_power_on_hours",
            "s6_data_units_read",
            "s7_data_units_written",
            "s8_host_read_commands",
            "s9_host_write_commands",
            "s11_power_cycles",
            "s5_percentage_used",
            "s10_controller_busy_time",
        }
        assert top5 & growing

    def test_drift_grows_with_distance(self, fitted):
        near = feature_drift_report(fitted, (180, 240), (240, 300))
        far = feature_drift_report(fitted, (180, 240), (300, 360))
        mean_near = np.mean([d.psi for d in near])
        mean_far = np.mean([d.psi for d in far])
        assert mean_far >= mean_near - 0.01

    def test_drifted_columns_threshold(self):
        report = [FeatureDrift("a", 0.5), FeatureDrift("b", 0.05)]
        assert drifted_columns(report, threshold=0.1) == ["a"]

    def test_severity_labels(self):
        assert FeatureDrift("x", 0.01).severity == "stable"
        assert FeatureDrift("x", 0.15).severity == "drifting"
        assert FeatureDrift("x", 0.5).severity == "severe"

    def test_empty_window_raises(self, fitted):
        with pytest.raises(ValueError):
            feature_drift_report(fitted, (120, 240), (5000, 5001))
        with pytest.raises(ValueError):
            feature_drift_report(fitted, (240, 120), (240, 300))
