"""Unit tests for prediction explanation (permutation importance, alarms)."""

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.core.explain import explain_alarm, permutation_importance


@pytest.fixture(scope="module")
def fitted(small_fleet):
    model = MFPA(MFPAConfig())
    model.fit(small_fleet, train_end_day=240)
    return model


class TestPermutationImportance:
    @pytest.fixture(scope="class")
    def importances(self, fitted):
        return permutation_importance(fitted, 240, 360, n_repeats=2, seed=0)

    def test_covers_all_columns(self, fitted, importances):
        assert {imp.column for imp in importances} == set(fitted.assembler_.columns)

    def test_sorted_by_drop(self, importances):
        drops = [imp.auc_drop for imp in importances]
        assert drops == sorted(drops, reverse=True)

    def test_informative_features_rank_high(self, importances):
        # Some genuinely failure-related column must sit in the top 10.
        top = {imp.column for imp in importances[:10]}
        informative = {
            "s14_media_errors",
            "s15_error_log_entries",
            "s3_available_spare",
            "s13_unsafe_shutdowns",
            "cum_w161_fs_io_error",
            "cum_w11_controller_error",
            "cum_b50_page_fault_in_nonpaged_a",
        }
        assert top & informative

    def test_constant_feature_zero_importance(self, importances):
        by_column = {imp.column: imp for imp in importances}
        assert abs(by_column["s4_spare_threshold"].auc_drop) < 1e-9

    def test_baseline_recorded(self, importances):
        assert all(0.5 <= imp.baseline_auc <= 1.0 for imp in importances)

    def test_invalid_repeats(self, fitted):
        with pytest.raises(ValueError):
            permutation_importance(fitted, 240, 360, n_repeats=0)


class TestExplainAlarm:
    def test_explains_faulty_drive(self, fitted):
        # Take a faulty drive's last record — maximal degradation.
        serial = next(
            s for s, d in fitted.failure_times_.items() if 240 <= d < 360
        )
        rows = fitted.dataset_.drive_rows(serial)
        day = int(rows["day"][-1])
        explanation = explain_alarm(fitted, serial, day)
        assert explanation.serial == serial
        assert 0.0 <= explanation.probability <= 1.0
        assert len(explanation.contributions) >= 1
        for contribution in explanation.contributions:
            assert contribution["column"] in fitted.assembler_.columns
            # Extremes beyond the healthy p95/p05 band by construction.
            assert (
                contribution["value"] > contribution["healthy_p95"]
                or contribution["value"] < contribution["healthy_median"]
            )

    def test_contributions_sorted_by_drop(self, fitted):
        serial = next(
            s for s, d in fitted.failure_times_.items() if 240 <= d < 360
        )
        day = int(fitted.dataset_.drive_rows(serial)["day"][-1])
        explanation = explain_alarm(fitted, serial, day)
        drops = [c["drop"] for c in explanation.contributions]
        assert drops == sorted(drops, reverse=True)

    def test_healthy_record_few_suspects(self, fitted):
        healthy = int(fitted.dataset_.healthy_serials()[0])
        rows = fitted.dataset_.drive_rows(healthy)
        day = int(rows["day"][len(rows["day"]) // 2])
        explanation = explain_alarm(fitted, healthy, day)
        assert explanation.probability < 0.5

    def test_unknown_day_raises(self, fitted):
        serial = int(fitted.dataset_.serials[0])
        with pytest.raises(ValueError, match="no record"):
            explain_alarm(fitted, serial, 10**6)
