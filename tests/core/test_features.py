"""Unit tests for feature groups (Table V) and the FeatureAssembler."""

import numpy as np
import pytest

from repro.core.features import (
    CUM_B_COLUMNS,
    CUM_W_COLUMNS,
    FEATURE_GROUPS,
    FeatureAssembler,
    feature_group,
)


class TestFeatureGroups:
    def test_seven_groups(self):
        assert set(FEATURE_GROUPS) == {"SFWB", "SFW", "SFB", "SF", "S", "W", "B"}

    def test_table5_counts(self):
        expected = {
            "SFWB": {"SMART": 16, "Firmware": 1, "WindowsEvent": 5, "BlueScreenofDeath": 23},
            "SFW": {"SMART": 16, "Firmware": 1, "WindowsEvent": 5, "BlueScreenofDeath": 0},
            "SFB": {"SMART": 16, "Firmware": 1, "WindowsEvent": 0, "BlueScreenofDeath": 23},
            "SF": {"SMART": 16, "Firmware": 1, "WindowsEvent": 0, "BlueScreenofDeath": 0},
            "S": {"SMART": 16, "Firmware": 0, "WindowsEvent": 0, "BlueScreenofDeath": 0},
            "W": {"SMART": 0, "Firmware": 0, "WindowsEvent": 5, "BlueScreenofDeath": 0},
            "B": {"SMART": 0, "Firmware": 0, "WindowsEvent": 0, "BlueScreenofDeath": 23},
        }
        for name, counts in expected.items():
            assert feature_group(name).counts == counts, name

    def test_column_totals(self):
        assert len(feature_group("SFWB")) == 16 + 1 + 5 + 23
        assert len(feature_group("S")) == 16
        assert len(feature_group("B")) == 23

    def test_sfwb_is_superset(self):
        sfwb = set(feature_group("SFWB").columns)
        for name in ("SFW", "SFB", "SF", "S", "W", "B"):
            assert set(feature_group(name).columns) <= sfwb

    def test_unknown_group_raises(self):
        with pytest.raises(ValueError, match="unknown feature group"):
            feature_group("XYZ")

    def test_cumulative_column_names(self):
        assert all(c.startswith("cum_w") for c in CUM_W_COLUMNS)
        assert all(c.startswith("cum_b") for c in CUM_B_COLUMNS)


class TestFeatureAssembler:
    @pytest.fixture()
    def toy_columns(self):
        # Two drives: serial 1 with 3 records, serial 2 with 2 records.
        return {
            "serial": np.array([1, 1, 1, 2, 2]),
            "day": np.array([0, 1, 2, 0, 1]),
            "a": np.array([10.0, 11.0, 12.0, 20.0, 21.0]),
            "b": np.array([0.1, 0.2, 0.3, 0.4, 0.5]),
        }

    def test_snapshot_assembly(self, toy_columns):
        assembler = FeatureAssembler(("a", "b"))
        X = assembler.assemble(toy_columns, np.array([0, 2, 4]))
        np.testing.assert_allclose(X, [[10.0, 0.1], [12.0, 0.3], [21.0, 0.5]])

    def test_history_stacking_earlier_first(self, toy_columns):
        assembler = FeatureAssembler(("a",), history_length=2)
        X = assembler.assemble(toy_columns, np.array([2]))
        np.testing.assert_allclose(X, [[11.0, 12.0]])

    def test_history_clamps_at_drive_start(self, toy_columns):
        assembler = FeatureAssembler(("a",), history_length=3)
        # Row 3 is drive 2's first record; history must not leak drive 1.
        X = assembler.assemble(toy_columns, np.array([3]))
        np.testing.assert_allclose(X, [[20.0, 20.0, 20.0]])

    def test_history_does_not_cross_drives(self, toy_columns):
        assembler = FeatureAssembler(("a",), history_length=2)
        X = assembler.assemble(toy_columns, np.array([4]))
        np.testing.assert_allclose(X, [[20.0, 21.0]])

    def test_n_features_property(self):
        assembler = FeatureAssembler(("a", "b"), history_length=4)
        assert assembler.n_features == 8

    def test_missing_column_raises(self, toy_columns):
        with pytest.raises(KeyError, match="missing feature columns"):
            FeatureAssembler(("zzz",)).assemble(toy_columns, np.array([0]))

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            FeatureAssembler(())

    def test_invalid_history_rejected(self):
        with pytest.raises(ValueError):
            FeatureAssembler(("a",), history_length=0)
