"""Unit tests for feature groups (Table V) and the FeatureAssembler."""

import numpy as np
import pytest

from repro.core.features import (
    CUM_B_COLUMNS,
    CUM_W_COLUMNS,
    FEATURE_GROUPS,
    FeatureAssembler,
    feature_group,
)


class TestFeatureGroups:
    def test_seven_groups(self):
        assert set(FEATURE_GROUPS) == {"SFWB", "SFW", "SFB", "SF", "S", "W", "B"}

    def test_table5_counts(self):
        expected = {
            "SFWB": {"SMART": 16, "Firmware": 1, "WindowsEvent": 5, "BlueScreenofDeath": 23},
            "SFW": {"SMART": 16, "Firmware": 1, "WindowsEvent": 5, "BlueScreenofDeath": 0},
            "SFB": {"SMART": 16, "Firmware": 1, "WindowsEvent": 0, "BlueScreenofDeath": 23},
            "SF": {"SMART": 16, "Firmware": 1, "WindowsEvent": 0, "BlueScreenofDeath": 0},
            "S": {"SMART": 16, "Firmware": 0, "WindowsEvent": 0, "BlueScreenofDeath": 0},
            "W": {"SMART": 0, "Firmware": 0, "WindowsEvent": 5, "BlueScreenofDeath": 0},
            "B": {"SMART": 0, "Firmware": 0, "WindowsEvent": 0, "BlueScreenofDeath": 23},
        }
        for name, counts in expected.items():
            assert feature_group(name).counts == counts, name

    def test_column_totals(self):
        assert len(feature_group("SFWB")) == 16 + 1 + 5 + 23
        assert len(feature_group("S")) == 16
        assert len(feature_group("B")) == 23

    def test_sfwb_is_superset(self):
        sfwb = set(feature_group("SFWB").columns)
        for name in ("SFW", "SFB", "SF", "S", "W", "B"):
            assert set(feature_group(name).columns) <= sfwb

    def test_unknown_group_raises(self):
        with pytest.raises(ValueError, match="unknown feature group"):
            feature_group("XYZ")

    def test_cumulative_column_names(self):
        assert all(c.startswith("cum_w") for c in CUM_W_COLUMNS)
        assert all(c.startswith("cum_b") for c in CUM_B_COLUMNS)


class TestFeatureAssembler:
    @pytest.fixture()
    def toy_columns(self):
        # Two drives: serial 1 with 3 records, serial 2 with 2 records.
        return {
            "serial": np.array([1, 1, 1, 2, 2]),
            "day": np.array([0, 1, 2, 0, 1]),
            "a": np.array([10.0, 11.0, 12.0, 20.0, 21.0]),
            "b": np.array([0.1, 0.2, 0.3, 0.4, 0.5]),
        }

    def test_snapshot_assembly(self, toy_columns):
        assembler = FeatureAssembler(("a", "b"))
        X = assembler.assemble(toy_columns, np.array([0, 2, 4]))
        np.testing.assert_allclose(X, [[10.0, 0.1], [12.0, 0.3], [21.0, 0.5]])

    def test_history_stacking_earlier_first(self, toy_columns):
        assembler = FeatureAssembler(("a",), history_length=2)
        X = assembler.assemble(toy_columns, np.array([2]))
        np.testing.assert_allclose(X, [[11.0, 12.0]])

    def test_history_clamps_at_drive_start(self, toy_columns):
        assembler = FeatureAssembler(("a",), history_length=3)
        # Row 3 is drive 2's first record; history must not leak drive 1.
        X = assembler.assemble(toy_columns, np.array([3]))
        np.testing.assert_allclose(X, [[20.0, 20.0, 20.0]])

    def test_history_does_not_cross_drives(self, toy_columns):
        assembler = FeatureAssembler(("a",), history_length=2)
        X = assembler.assemble(toy_columns, np.array([4]))
        np.testing.assert_allclose(X, [[20.0, 21.0]])

    def test_n_features_property(self):
        assembler = FeatureAssembler(("a", "b"), history_length=4)
        assert assembler.n_features == 8

    def test_missing_column_raises(self, toy_columns):
        with pytest.raises(KeyError, match="missing feature columns"):
            FeatureAssembler(("zzz",)).assemble(toy_columns, np.array([0]))

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            FeatureAssembler(())

    def test_invalid_history_rejected(self):
        with pytest.raises(ValueError):
            FeatureAssembler(("a",), history_length=0)


def _assemble_walk_forward(columns, history_length, dataset_columns, row_indices):
    """The pre-vectorization reference: walk candidates forward until
    every row's history index lands inside its own drive's run."""
    row_indices = np.asarray(row_indices)
    base = np.column_stack(
        [dataset_columns[column] for column in columns]
    ).astype(float)
    serial = np.asarray(dataset_columns["serial"])
    blocks = []
    for offset in range(history_length - 1, -1, -1):
        candidate = np.maximum(row_indices - offset, 0)
        same_drive = serial[candidate] == serial[row_indices]
        while not np.all(same_drive):
            candidate = np.where(same_drive, candidate, candidate + 1)
            same_drive = serial[candidate] == serial[row_indices]
        blocks.append(base[candidate])
    return np.concatenate(blocks, axis=1)


class TestHistoryVectorization:
    """The searchsorted clamp must reproduce the old walk-forward loop."""

    @pytest.fixture()
    def short_drive_columns(self):
        # Drive lengths 1, 2 and 4 — the first two are shorter than the
        # history windows below, exercising the clamp-to-start padding.
        rng = np.random.default_rng(3)
        serial = np.array([5, 7, 7, 9, 9, 9, 9])
        return {
            "serial": serial,
            "day": np.array([0, 0, 1, 0, 1, 2, 3]),
            "a": rng.normal(0, 1, serial.size),
            "b": rng.normal(0, 1, serial.size),
        }

    @pytest.mark.parametrize("history_length", [2, 3, 5])
    def test_matches_walk_forward_on_short_drives(
        self, short_drive_columns, history_length
    ):
        rows = np.arange(short_drive_columns["serial"].size)
        assembler = FeatureAssembler(("a", "b"), history_length=history_length)
        np.testing.assert_array_equal(
            assembler.assemble(short_drive_columns, rows),
            _assemble_walk_forward(
                ("a", "b"), history_length, short_drive_columns, rows
            ),
        )

    def test_matches_walk_forward_on_random_fleet(self):
        rng = np.random.default_rng(11)
        lengths = rng.integers(1, 9, size=40)
        serial = np.repeat(np.arange(lengths.size), lengths)
        columns = {
            "serial": serial,
            "day": np.concatenate([np.arange(n) for n in lengths]),
            "a": rng.normal(0, 1, serial.size),
        }
        rows = rng.choice(serial.size, size=60)
        assembler = FeatureAssembler(("a",), history_length=4)
        np.testing.assert_array_equal(
            assembler.assemble(columns, rows),
            _assemble_walk_forward(("a",), 4, columns, rows),
        )

    def test_string_serials_supported(self):
        columns = {
            "serial": np.array(["d1", "d1", "d2", "d2", "d2"]),
            "a": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        }
        assembler = FeatureAssembler(("a",), history_length=3)
        np.testing.assert_allclose(
            assembler.assemble(columns, np.array([1, 3])),
            [[1.0, 1.0, 2.0], [3.0, 3.0, 4.0]],
        )
