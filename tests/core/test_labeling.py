"""Unit tests for failure-time identification (θ rule) and sampling."""

import numpy as np
import pytest

from repro.core.labeling import FailureTimeIdentifier, SampleSet, build_samples
from repro.core.preprocess import preprocess


class TestFailureTimeIdentifier:
    def test_every_surviving_ticket_labeled(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        failure_times = FailureTimeIdentifier(theta=7).identify(prepared)
        present = {t.serial for t in prepared.tickets}
        assert set(failure_times) == present

    def test_small_lag_uses_last_tracking_point(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        theta = 7
        failure_times = FailureTimeIdentifier(theta=theta).identify(prepared)
        for ticket in prepared.tickets:
            days = prepared.drive_rows(ticket.serial)["day"]
            closest = int(days[days <= ticket.initial_maintenance_time][-1])
            interval = ticket.initial_maintenance_time - closest
            if interval <= theta:
                assert failure_times[ticket.serial] == closest
            else:
                assert (
                    failure_times[ticket.serial]
                    == ticket.initial_maintenance_time - theta
                )

    def test_identified_time_close_to_true_failure(self, prepared_fleet):
        # The θ rule should land within ~θ days of the drive's actual
        # (simulated) failure day for most drives.
        prepared, _, _ = prepared_fleet
        failure_times = FailureTimeIdentifier(theta=7).identify(prepared)
        errors = []
        for serial, labeled in failure_times.items():
            true_day = prepared.drives[serial].failure_day
            errors.append(abs(labeled - true_day))
        assert np.median(errors) <= 7

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            FailureTimeIdentifier(theta=-1)


class TestSampleSet:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError, match="align"):
            SampleSet(
                row_indices=np.arange(3),
                labels=np.zeros(2),
                serials=np.zeros(3),
                days=np.zeros(3),
            )

    def test_sorted_by_day(self):
        samples = SampleSet(
            row_indices=np.array([0, 1, 2]),
            labels=np.array([0, 1, 0]),
            serials=np.array([1, 2, 3]),
            days=np.array([30, 10, 20]),
        )
        ordered = samples.sorted_by_day()
        np.testing.assert_array_equal(ordered.days, [10, 20, 30])
        np.testing.assert_array_equal(ordered.labels, [1, 0, 0])

    def test_counts(self):
        samples = SampleSet(
            row_indices=np.arange(4),
            labels=np.array([0, 1, 1, 0]),
            serials=np.arange(4),
            days=np.arange(4),
        )
        assert samples.n_samples == 4
        assert samples.n_positive == 2
        assert samples.n_negative == 2


class TestBuildSamples:
    @pytest.fixture(scope="class")
    def labeled(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        failure_times = FailureTimeIdentifier(theta=7).identify(prepared)
        return prepared, failure_times

    def test_positive_rows_inside_window(self, labeled):
        prepared, failure_times = labeled
        samples = build_samples(prepared, failure_times, positive_window=14)
        positives = samples.subset(np.flatnonzero(samples.labels == 1))
        for serial, day in zip(positives.serials[:200], positives.days[:200]):
            failure_time = failure_times[int(serial)]
            assert failure_time - 14 < day <= failure_time

    def test_negatives_only_from_healthy_by_default(self, labeled):
        prepared, failure_times = labeled
        samples = build_samples(prepared, failure_times)
        negatives = samples.subset(np.flatnonzero(samples.labels == 0))
        faulty = set(failure_times)
        assert not faulty & set(np.unique(negatives.serials).tolist())

    def test_faulty_early_records_as_negatives_optional(self, labeled):
        prepared, failure_times = labeled
        samples = build_samples(
            prepared, failure_times, include_negative_from_faulty=True
        )
        negatives = samples.subset(np.flatnonzero(samples.labels == 0))
        faulty = set(failure_times)
        assert faulty & set(np.unique(negatives.serials).tolist())

    def test_lookahead_shifts_window(self, labeled):
        prepared, failure_times = labeled
        base = build_samples(prepared, failure_times, positive_window=7, lookahead=0)
        shifted = build_samples(prepared, failure_times, positive_window=7, lookahead=10)
        # Shifted windows end 10 days earlier.
        for samples, lookahead in ((base, 0), (shifted, 10)):
            positives = samples.subset(np.flatnonzero(samples.labels == 1))
            for serial, day in zip(positives.serials[:100], positives.days[:100]):
                assert day <= failure_times[int(serial)] - lookahead

    def test_longer_window_more_positives(self, labeled):
        prepared, failure_times = labeled
        short = build_samples(prepared, failure_times, positive_window=7)
        long = build_samples(prepared, failure_times, positive_window=21)
        assert long.n_positive > short.n_positive

    def test_imbalance_is_severe(self, labeled):
        prepared, failure_times = labeled
        samples = build_samples(prepared, failure_times)
        assert samples.n_negative > 5 * samples.n_positive

    def test_invalid_params(self, labeled):
        prepared, failure_times = labeled
        with pytest.raises(ValueError):
            build_samples(prepared, failure_times, positive_window=0)
        with pytest.raises(ValueError):
            build_samples(prepared, failure_times, lookahead=-1)
