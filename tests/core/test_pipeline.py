"""Integration-grade unit tests for the end-to-end MFPA pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import MFPA, MFPAConfig
from repro.ml.naive_bayes import GaussianNaiveBayes


@pytest.fixture(scope="module")
def fitted_sfwb(small_fleet):
    model = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model.fit(small_fleet, train_end_day=240)
    return model


class TestConfig:
    def test_defaults_match_paper(self):
        config = MFPAConfig()
        assert config.theta == 7
        assert config.max_gap == 10
        assert config.fill_gap == 3
        assert config.feature_group_name == "SFWB"

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            MFPAConfig(feature_group_name="QQQ")

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            MFPAConfig(decision_threshold=0.0)


class TestFit(object):
    def test_stage_stats_populated(self, fitted_sfwb):
        stages = set(fitted_sfwb.stage_stats_)
        assert {"feature_engineering", "labeling", "sampling", "training"} <= stages

    def test_unfitted_evaluate_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MFPA().evaluate(0, 10)

    def test_no_positives_raises(self, small_fleet):
        model = MFPA(MFPAConfig())
        with pytest.raises(ValueError, match="no positive samples"):
            model.fit(small_fleet, train_end_day=2)

    def test_failure_times_respect_theta(self, fitted_sfwb, small_fleet):
        for serial, labeled_day in fitted_sfwb.failure_times_.items():
            ticket = next(t for t in small_fleet.tickets if t.serial == serial)
            assert labeled_day <= ticket.initial_maintenance_time


class TestEvaluate:
    def test_reports_present(self, fitted_sfwb):
        result = fitted_sfwb.evaluate(240, 360)
        assert result.n_faulty_drives > 0
        assert result.n_healthy_drives > 0
        assert 0.0 <= result.drive_report.tpr <= 1.0
        assert 0.0 <= result.drive_report.fpr <= 1.0
        assert result.record_report.n_samples >= result.drive_report.n_samples

    def test_detects_most_failures(self, fitted_sfwb):
        result = fitted_sfwb.evaluate(240, 360)
        assert result.drive_report.tpr >= 0.8
        assert result.drive_report.fpr <= 0.15

    def test_sfwb_beats_smart_only(self, small_fleet, fitted_sfwb):
        smart_only = MFPA(MFPAConfig(feature_group_name="S"))
        smart_only.fit(small_fleet, train_end_day=240)
        sfwb_result = fitted_sfwb.evaluate(240, 360)
        smart_result = smart_only.evaluate(240, 360)
        assert sfwb_result.drive_report.auc >= smart_result.drive_report.auc - 0.02

    def test_invalid_period_raises(self, fitted_sfwb):
        with pytest.raises(ValueError, match="end_day"):
            fitted_sfwb.evaluate(300, 300)

    def test_empty_period_raises(self, fitted_sfwb):
        with pytest.raises(ValueError, match="no drives"):
            fitted_sfwb.evaluate(100000, 100001)

    def test_str_summary(self, fitted_sfwb):
        result = fitted_sfwb.evaluate(240, 360)
        assert "drives[" in str(result)


class TestVariants:
    def test_explicit_feature_columns(self, small_fleet):
        config = MFPAConfig(
            feature_columns=("s14_media_errors", "s15_error_log_entries"),
        )
        model = MFPA(config)
        model.fit(small_fleet, train_end_day=240)
        assert model.assembler_.columns == (
            "s14_media_errors",
            "s15_error_log_entries",
        )
        result = model.evaluate(240, 360)
        assert result.drive_report.n_samples > 0

    def test_alternative_algorithm_with_selection(self, small_fleet):
        # Bayes needs the paper's forward-selection stage: without it the
        # time-drifting cumulative usage counters swamp its Gaussians.
        from repro.ml.tree import DecisionTreeClassifier

        config = MFPAConfig(
            algorithm=GaussianNaiveBayes(),
            feature_selection=True,
            selection_estimator=DecisionTreeClassifier(max_depth=5, seed=0),
        )
        model = MFPA(config)
        model.fit(small_fleet, train_end_day=240)
        assert len(model.selection_history_) >= 1
        assert len(model.assembler_.columns) <= 12
        result = model.evaluate(240, 360)
        assert result.drive_report.tpr > 0.5

    def test_grid_search_integration(self, small_fleet):
        from repro.ml.tree import DecisionTreeClassifier

        config = MFPAConfig(
            algorithm=DecisionTreeClassifier(seed=0),
            param_grid={"max_depth": [3, 8]},
        )
        model = MFPA(config)
        model.fit(small_fleet, train_end_day=240)
        assert model.search_.best_params_["max_depth"] in (3, 8)
        assert model.evaluate(240, 360).drive_report.tpr > 0.5

    def test_history_length_sequences(self, small_fleet):
        config = MFPAConfig(
            feature_columns=("s14_media_errors", "cum_w161_fs_io_error"),
            history_length=3,
            algorithm=GaussianNaiveBayes(),
        )
        model = MFPA(config)
        model.fit(small_fleet, train_end_day=240)
        assert model.assembler_.n_features == 6

    def test_calibrate_threshold_sets_config(self, small_fleet):
        model = MFPA(MFPAConfig())
        model.fit(small_fleet, train_end_day=200)
        threshold = model.calibrate_threshold(200, 260, max_fpr=0.02)
        assert 0.0 < threshold < 1.0
        assert model.config.decision_threshold == threshold
        result = model.evaluate(260, 360)
        assert result.drive_report.tpr > 0.5

    def test_calibrate_threshold_youden_fallback(self, small_fleet):
        model = MFPA(MFPAConfig())
        model.fit(small_fleet, train_end_day=200)
        # max_fpr=None forces the Youden path.
        threshold = model.calibrate_threshold(200, 260, max_fpr=None)
        assert 0.0 < threshold < 1.0

    def test_calibrate_requires_both_classes(self, small_fleet):
        model = MFPA(MFPAConfig())
        model.fit(small_fleet, train_end_day=240)
        # Pick a one-day slice guaranteed to contain no identified
        # failure time: healthy drives only.
        failure_days = set(model.failure_times_.values())
        quiet_day = next(d for d in range(240, 360) if d not in failure_days)
        with pytest.raises(ValueError, match="faulty and healthy"):
            model.calibrate_threshold(quiet_day, quiet_day + 1)

    def test_lookahead_reduces_tpr(self, small_fleet):
        near = MFPA(MFPAConfig(positive_window=7, lookahead=0))
        far = MFPA(MFPAConfig(positive_window=7, lookahead=15))
        near.fit(small_fleet, train_end_day=240)
        far.fit(small_fleet, train_end_day=240)
        near_tpr = near.evaluate(240, 360).drive_report.tpr
        far_tpr = far.evaluate(240, 360).drive_report.tpr
        assert far_tpr <= near_tpr + 0.05


class TestBindDataset:
    """Transform-only rebinding for artifact-loaded pipelines."""

    def test_bound_pipeline_evaluates_identically(
        self, fitted_sfwb, small_fleet, tmp_path
    ):
        from repro.ml.artifact import load_model, save_model

        save_model(fitted_sfwb, tmp_path / "artifact")
        loaded = load_model(tmp_path / "artifact")
        assert not hasattr(loaded, "dataset_")  # artifacts ship no data
        loaded.bind_dataset(small_fleet)
        want = fitted_sfwb.evaluate(240, 360)
        got = loaded.evaluate(240, 360)
        assert got.drive_report.tpr == want.drive_report.tpr
        assert got.drive_report.fpr == want.drive_report.fpr
        np.testing.assert_array_equal(
            sorted(got.period), sorted(want.period)
        )
        assert loaded.failure_times_ == fitted_sfwb.failure_times_

    def test_bind_requires_fitted(self, small_fleet):
        with pytest.raises(RuntimeError, match="not fitted"):
            MFPA(MFPAConfig()).bind_dataset(small_fleet)

    def test_unseen_firmware_rejected(self, fitted_sfwb, small_fleet, tmp_path):
        from repro.ml.artifact import load_model, save_model

        save_model(fitted_sfwb, tmp_path / "artifact")
        loaded = load_model(tmp_path / "artifact")
        mutated = type(small_fleet)(
            dict(small_fleet.columns), small_fleet.drives, small_fleet.tickets
        )
        firmware = mutated.columns["firmware"].copy()
        firmware[:] = "FW-NEVER-SEEN"
        mutated.columns["firmware"] = firmware
        with pytest.raises(ValueError, match="unseen label"):
            loaded.bind_dataset(mutated)
