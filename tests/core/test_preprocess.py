"""Unit tests for the discontinuity-repair preprocessing stage."""

import numpy as np
import pytest

from repro.core.preprocess import (
    IMPUTED_COLUMN,
    _grouped_cumsum,
    accumulate_events,
    encode_firmware,
    preprocess,
    repair_discontinuity,
)
from repro.telemetry.dataset import TelemetryDataset, W_COLUMNS, B_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS


def _toy_dataset(day_lists, metas=None):
    """Build a minimal dataset with the full schema from day lists."""
    serials, days = [], []
    for serial, day_list in day_lists.items():
        serials.extend([serial] * len(day_list))
        days.extend(day_list)
    n = len(days)
    columns = {
        "serial": np.array(serials, dtype=np.int64),
        "day": np.array(days, dtype=np.int64),
        "firmware": np.array(["I_F_1"] * n, dtype=object),
        "vendor": np.array(["I"] * n, dtype=object),
        "model": np.array(["I-A128"] * n, dtype=object),
    }
    for column in (*SMART_COLUMNS, *W_COLUMNS, *B_COLUMNS):
        columns[column] = np.arange(n, dtype=float)
    order = np.lexsort((columns["day"], columns["serial"]))
    columns = {k: v[order] for k, v in columns.items()}
    from repro.telemetry.dataset import DriveMeta

    drives = {
        serial: DriveMeta(serial, "I", "I-A128", 128, "I_F_1", "healthy", None)
        for serial in day_lists
    }
    return TelemetryDataset(columns, drives, [])


class TestGroupedCumsum:
    def test_single_group(self):
        values = np.array([1.0, 2.0, 3.0])
        starts = np.array([True, False, False])
        np.testing.assert_allclose(_grouped_cumsum(values, starts), [1, 3, 6])

    def test_restarts_at_group_boundaries(self):
        values = np.array([1.0, 1.0, 5.0, 5.0])
        starts = np.array([True, False, True, False])
        np.testing.assert_allclose(_grouped_cumsum(values, starts), [1, 2, 5, 10])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            _grouped_cumsum(np.array([-1.0]), np.array([True]))


class TestAccumulateEvents:
    def test_adds_cum_columns(self, small_fleet):
        accumulated = accumulate_events(small_fleet)
        for column in (*W_COLUMNS, *B_COLUMNS):
            assert f"cum_{column}" in accumulated.columns

    def test_cumulative_per_drive(self, small_fleet):
        accumulated = accumulate_events(small_fleet)
        serial = int(small_fleet.serials[3])
        rows = accumulated.drive_rows(serial)
        column = W_COLUMNS[0]
        np.testing.assert_allclose(
            rows[f"cum_{column}"], np.cumsum(rows[column])
        )

    def test_original_columns_untouched(self, small_fleet):
        accumulated = accumulate_events(small_fleet)
        np.testing.assert_array_equal(
            accumulated.columns[W_COLUMNS[0]], small_fleet.columns[W_COLUMNS[0]]
        )


class TestEncodeFirmware:
    def test_codes_match_encoder(self, small_fleet):
        encoded, encoder = encode_firmware(small_fleet)
        codes = encoded.columns["firmware_code"]
        recovered = encoder.inverse_transform(codes.astype(int)[:5])
        assert recovered == list(small_fleet.columns["firmware"][:5])

    def test_codes_are_floats_for_models(self, small_fleet):
        encoded, _ = encode_firmware(small_fleet)
        assert encoded.columns["firmware_code"].dtype == float


class TestRepairDiscontinuity:
    def test_short_gaps_filled_with_means(self):
        dataset = _toy_dataset({1: [0, 1, 2, 3, 4, 7, 8, 9, 10, 11]})
        repaired, report = repair_discontinuity(dataset, max_gap=10, fill_gap=3)
        days = repaired.drive_rows(1)["day"]
        np.testing.assert_array_equal(days, np.arange(12))
        assert report.n_rows_filled == 2
        # Filled rows carry the mean of the neighbors.
        rows = repaired.drive_rows(1)
        left = np.flatnonzero(rows["day"] == 4)[0]
        filled = np.flatnonzero(rows["day"] == 5)[0]
        right = np.flatnonzero(rows["day"] == 7)[0]
        expected = (rows[SMART_COLUMNS[5]][left] + rows[SMART_COLUMNS[5]][right]) / 2
        assert rows[SMART_COLUMNS[5]][filled] == pytest.approx(expected)

    def test_imputed_flag_set(self):
        dataset = _toy_dataset({1: [0, 1, 2, 3, 4, 6, 7, 8]})
        repaired, _ = repair_discontinuity(dataset)
        rows = repaired.drive_rows(1)
        assert rows[IMPUTED_COLUMN][np.flatnonzero(rows["day"] == 5)[0]] == 1.0
        assert rows[IMPUTED_COLUMN][0] == 0.0

    def test_long_gap_splits_and_drops_short_fragment(self):
        # Paper's F3 case: (0, 11-14) -> leading record is unusable.
        dataset = _toy_dataset(
            {1: [0, 30, 31, 32, 33, 34, 35], 2: list(range(20))}
        )
        repaired, report = repair_discontinuity(
            dataset, max_gap=10, fill_gap=3, min_segment_records=5
        )
        days = repaired.drive_rows(1)["day"]
        assert days[0] == 30  # the isolated day-0 record was dropped
        assert report.n_rows_dropped == 1

    def test_whole_drive_dropped_when_all_fragments_short(self):
        dataset = _toy_dataset({1: [0, 20, 40, 60], 2: list(range(20))})
        repaired, report = repair_discontinuity(dataset, min_segment_records=5)
        assert 1 not in repaired.drives
        assert report.n_drives_dropped == 1

    def test_medium_gaps_neither_filled_nor_dropped(self):
        dataset = _toy_dataset({1: [0, 1, 2, 3, 4, 10, 11, 12, 13, 14]})
        repaired, report = repair_discontinuity(dataset, max_gap=10, fill_gap=3)
        # Gap of 5 missing days: below max_gap=10? diff=6 -> gap=5 so
        # fragment survives, but 5 > fill_gap so nothing is inserted.
        assert report.n_rows_filled == 0
        assert report.n_rows_dropped == 0
        assert repaired.drive_rows(1)["day"].size == 10

    def test_boundary_gap_exactly_max_gap_splits(self):
        dataset = _toy_dataset({1: [0, 1, 2, 3, 4, 15, 16, 17, 18, 19]})
        repaired, report = repair_discontinuity(
            dataset, max_gap=10, fill_gap=3, min_segment_records=5
        )
        # Gap = 10 missing days -> split; both fragments have 5 records.
        assert repaired.drive_rows(1)["day"].size == 10
        assert report.n_rows_dropped == 0

    def test_sort_order_restored_after_fill(self):
        dataset = _toy_dataset({1: [0, 2, 3], 2: [0, 1, 3]})
        repaired, _ = repair_discontinuity(dataset, min_segment_records=2)
        serial = repaired.columns["serial"]
        day = repaired.columns["day"]
        order = np.lexsort((day, serial))
        np.testing.assert_array_equal(order, np.arange(serial.size))

    def test_invalid_thresholds(self, small_fleet):
        with pytest.raises(ValueError):
            repair_discontinuity(small_fleet, max_gap=1)
        with pytest.raises(ValueError):
            repair_discontinuity(small_fleet, fill_gap=-1)
        with pytest.raises(ValueError):
            repair_discontinuity(small_fleet, max_gap=5, fill_gap=5)

    def test_everything_dropped_raises(self):
        dataset = _toy_dataset({1: [0, 20, 40]})
        with pytest.raises(ValueError, match="every record"):
            repair_discontinuity(dataset, min_segment_records=10)

    def test_report_row_accounting(self, small_fleet):
        repaired, report = repair_discontinuity(small_fleet)
        assert (
            report.n_output_rows
            == report.n_input_rows - report.n_rows_dropped + report.n_rows_filled
        )
        assert "rows" in str(report)


class TestFullPreprocess:
    def test_produces_model_ready_columns(self, prepared_fleet):
        prepared, report, encoder = prepared_fleet
        assert "firmware_code" in prepared.columns
        assert "cum_w161_fs_io_error" in prepared.columns
        assert report.n_output_rows == prepared.n_records
        assert len(encoder.classes_) >= 1

    def test_idempotent_on_repaired_data(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        again, report = repair_discontinuity(prepared)
        assert report.n_rows_filled == 0
