"""Unit tests for remaining-useful-life regression."""

import numpy as np
import pytest

from repro.core.rul import RULConfig, RULRegressor
from repro.ml.forest import RandomForestRegressor


class TestRandomForestRegressor:
    def test_fits_smooth_function(self, rng):
        X = rng.uniform(0, 1, (400, 2))
        y = 3 * X[:, 0] + np.sin(4 * X[:, 1])
        model = RandomForestRegressor(n_estimators=20, max_depth=8, seed=0).fit(X, y)
        predictions = model.predict(X)
        assert np.mean((predictions - y) ** 2) < 0.1

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((2, 2)))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.ones((3, 1)), np.ones(4))
        X = np.ones((4, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(X, np.ones(4))

    def test_deterministic_by_seed(self, rng):
        X = rng.normal(size=(100, 3))
        y = X[:, 0]
        a = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=1).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestRULRegressor:
    @pytest.fixture(scope="class")
    def fitted(self, small_fleet):
        model = RULRegressor(RULConfig(n_estimators=25, seed=0))
        model.fit(small_fleet, train_end_day=240)
        return model

    def test_predictions_within_cap(self, fitted):
        predictions = fitted.predict_rows(np.arange(100))
        assert np.all(predictions >= 0)
        assert np.all(predictions <= fitted.config.horizon_days)

    def test_countdown_decreases_toward_failure(self, fitted):
        # Average over test failures: predicted RUL in the final 3 days
        # must be smaller than 2+ weeks out.
        prepared = fitted.dataset_
        near, far = [], []
        for serial, failure_time in fitted.failure_times_.items():
            if failure_time < 240:
                continue
            days = prepared.drive_rows(serial)["day"]
            base = prepared._row_slices()[serial].start
            near_mask = (days >= failure_time - 3) & (days <= failure_time)
            far_mask = (days >= failure_time - 21) & (days <= failure_time - 14)
            if near_mask.any():
                near.extend(fitted.predict_rows(base + np.flatnonzero(near_mask)))
            if far_mask.any():
                far.extend(fitted.predict_rows(base + np.flatnonzero(far_mask)))
        if not near or not far:
            pytest.skip("not enough test failures on this seed")
        assert np.mean(near) < np.mean(far)

    def test_evaluation_metrics(self, fitted):
        evaluation = fitted.evaluate(240, 360)
        assert evaluation.n_records > 0
        assert 0 <= evaluation.mae_days <= fitted.config.horizon_days
        assert 0 <= evaluation.within_7_days <= 1

    def test_healthy_records_predicted_far(self, fitted):
        prepared = fitted.dataset_
        healthy = int(prepared.healthy_serials()[0])
        base = prepared._row_slices()[healthy].start
        n = prepared.drive_rows(healthy)["day"].size
        predictions = fitted.predict_rows(base + np.arange(n))
        assert np.median(predictions) > fitted.config.horizon_days * 0.5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RULRegressor().predict_rows(np.arange(3))

    def test_no_failures_period_raises(self, fitted):
        with pytest.raises(ValueError, match="no failures"):
            fitted.evaluate(10**6, 10**6 + 1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RULConfig(horizon_days=3)
        with pytest.raises(ValueError):
            RULConfig(feature_group_name="ZZZ")
