"""Unit tests for sequential forward feature selection."""

import numpy as np
import pytest

from repro.core.selection import SequentialForwardSelector
from repro.ml.model_selection import KFold
from repro.ml.naive_bayes import GaussianNaiveBayes


def _informative_and_noise(n=400, seed=0):
    """Columns 0 and 1 carry the label; columns 2-4 are pure noise."""
    generator = np.random.default_rng(seed)
    y = generator.integers(0, 2, n)
    X = generator.normal(0, 1, (n, 5))
    X[:, 0] += 2.5 * y
    X[:, 1] -= 2.0 * y
    return X, y


class TestSequentialForwardSelector:
    def test_selects_informative_features_first(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0)
        )
        selected = selector.select(X, y)
        assert set(selected[:2]) == {0, 1}

    def test_noise_features_excluded(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0), tolerance=0.005
        )
        selected = selector.select(X, y)
        assert len(selected) <= 3

    def test_history_records_improvements(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0)
        )
        selector.select(X, y)
        scores = [score for _, score in selector.history_]
        assert all(b >= a for a, b in zip(scores, scores[1:]))
        assert selector.best_score_ == scores[-1]

    def test_max_features_cap(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0), max_features=1
        )
        assert len(selector.select(X, y)) == 1

    def test_at_least_one_feature_selected(self):
        generator = np.random.default_rng(1)
        X = generator.normal(0, 1, (100, 3))  # nothing informative
        y = generator.integers(0, 2, 100)
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0)
        )
        assert len(selector.select(X, y)) >= 1

    def test_youden_scoring(self):
        from repro.core.selection import youden_score

        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(),
            KFold(n_splits=3, seed=0),
            scoring=youden_score,
        )
        selected = selector.select(X, y)
        assert 0 in selected or 1 in selected

    def test_youden_score_values(self):
        import numpy as np

        from repro.core.selection import youden_score

        perfect = youden_score(np.array([1, 0]), np.array([1, 0]))
        assert perfect == 1.0
        # All-positive predictor gains nothing: TPR 1, FPR 1.
        degenerate = youden_score(np.array([1, 0]), np.array([1, 1]))
        assert degenerate == 0.0
        # Single-class fold: NaN component treated as 0.
        assert youden_score(np.array([1, 1]), np.array([1, 1])) == 1.0

    def test_invalid_max_features(self):
        with pytest.raises(ValueError):
            SequentialForwardSelector(
                GaussianNaiveBayes(), KFold(n_splits=3), max_features=0
            )
