"""Unit tests for sequential forward feature selection."""

import numpy as np
import pytest

from repro.core.selection import SequentialForwardSelector
from repro.ml.model_selection import KFold
from repro.ml.naive_bayes import GaussianNaiveBayes


def _informative_and_noise(n=400, seed=0):
    """Columns 0 and 1 carry the label; columns 2-4 are pure noise."""
    generator = np.random.default_rng(seed)
    y = generator.integers(0, 2, n)
    X = generator.normal(0, 1, (n, 5))
    X[:, 0] += 2.5 * y
    X[:, 1] -= 2.0 * y
    return X, y


class TestSequentialForwardSelector:
    def test_selects_informative_features_first(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0)
        )
        selected = selector.select(X, y)
        assert set(selected[:2]) == {0, 1}

    def test_noise_features_excluded(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0), tolerance=0.005
        )
        selected = selector.select(X, y)
        assert len(selected) <= 3

    def test_history_records_improvements(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0)
        )
        selector.select(X, y)
        scores = [score for _, score in selector.history_]
        assert all(b >= a for a, b in zip(scores, scores[1:]))
        assert selector.best_score_ == scores[-1]

    def test_max_features_cap(self):
        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0), max_features=1
        )
        assert len(selector.select(X, y)) == 1

    def test_at_least_one_feature_selected(self):
        generator = np.random.default_rng(1)
        X = generator.normal(0, 1, (100, 3))  # nothing informative
        y = generator.integers(0, 2, 100)
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(), KFold(n_splits=3, seed=0)
        )
        assert len(selector.select(X, y)) >= 1

    def test_youden_scoring(self):
        from repro.core.selection import youden_score

        X, y = _informative_and_noise()
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(),
            KFold(n_splits=3, seed=0),
            scoring=youden_score,
        )
        selected = selector.select(X, y)
        assert 0 in selected or 1 in selected

    def test_youden_score_values(self):
        import numpy as np

        from repro.core.selection import youden_score

        perfect = youden_score(np.array([1, 0]), np.array([1, 0]))
        assert perfect == 1.0
        # All-positive predictor gains nothing: TPR 1, FPR 1.
        degenerate = youden_score(np.array([1, 0]), np.array([1, 1]))
        assert degenerate == 0.0
        # Single-class folds leave the score undefined: NaN, so that
        # aggregation skips the fold rather than zeroing it.
        assert np.isnan(youden_score(np.array([1, 1]), np.array([1, 1])))
        assert np.isnan(youden_score(np.array([0, 0]), np.array([0, 0])))

    def test_positive_free_fold_skipped_in_aggregation(self):
        """A fold with no failures must not drag a good feature toward 0.

        Regression: youden_score used to zero the NaN TPR of a
        positive-free fold, halving a perfect feature's mean score.
        """
        import numpy as np

        from repro.core.selection import youden_score
        from repro.ml.model_selection import mean_defined_score

        fold_scores = [
            youden_score(np.array([1, 0, 1, 0]), np.array([1, 0, 1, 0])),  # 1.0
            youden_score(np.array([0, 0, 0, 0]), np.array([0, 0, 0, 0])),  # no positives
        ]
        assert mean_defined_score(fold_scores) == 1.0
        assert np.isnan(mean_defined_score([float("nan"), float("nan")]))

    def test_positive_free_fold_does_not_stall_selection(self):
        """Forward selection with one positive-free CV fold still finds
        the informative feature."""
        import numpy as np

        from repro.core.selection import SequentialForwardSelector, youden_score
        from repro.core.splitting import TimeSeriesCrossValidator
        from repro.ml.model_selection import cross_val_score

        generator = np.random.default_rng(3)
        n = 120
        X = generator.normal(0, 1, (n, 4))
        y = np.zeros(n, dtype=int)
        # k=2 -> four chronological subsets of 30. Failures stop after
        # day 90, so fold 1's validation subset (rows 90-119) is
        # positive-free and scores NaN; fold 0 stays informative.
        y[[5, 15, 25, 35, 45, 55, 65, 70, 75, 80, 85, 88]] = 1
        X[:, 2] += 3.0 * y
        selector = SequentialForwardSelector(
            GaussianNaiveBayes(),
            TimeSeriesCrossValidator(k=2),
            scoring=youden_score,
            max_features=1,
        )
        assert selector.select(X, y) == [2]
        # The NaN fold is skipped, not zeroed: the mean equals the single
        # defined fold's score instead of being halved by a phantom 0.
        scores = cross_val_score(
            GaussianNaiveBayes(),
            X[:, [2]],
            y,
            TimeSeriesCrossValidator(k=2),
            youden_score,
        )
        defined = scores[~np.isnan(scores)]
        assert np.isnan(scores).sum() == 1
        assert selector.best_score_ == pytest.approx(defined.mean())
        assert selector.best_score_ > defined.mean() / 2

    def test_invalid_max_features(self):
        with pytest.raises(ValueError):
            SequentialForwardSelector(
                GaussianNaiveBayes(), KFold(n_splits=3), max_features=0
            )
