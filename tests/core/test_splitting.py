"""Unit tests for time-series segmentation and cross-validation (Fig 8)."""

import numpy as np
import pytest

from repro.core.labeling import SampleSet
from repro.core.splitting import TimepointSplit, TimeSeriesCrossValidator


def _samples(days):
    days = np.asarray(days)
    return SampleSet(
        row_indices=np.arange(days.size),
        labels=np.zeros(days.size, dtype=int),
        serials=np.arange(days.size),
        days=days,
    )


class TestTimepointSplit:
    def test_no_future_data_in_training(self):
        samples = _samples([5, 20, 35, 50, 65, 80])
        train, test = TimepointSplit(split_day=40).split(samples)
        assert np.all(train.days < 40)
        assert np.all(test.days >= 40)

    def test_partition_complete(self):
        samples = _samples(np.arange(100))
        train, test = TimepointSplit(split_day=60).split(samples)
        assert train.n_samples + test.n_samples == 100

    def test_random_split_leaks_future(self):
        # The strawman: shuffled split mixes eras.
        samples = _samples(np.arange(1000))
        train, test = TimepointSplit.random_split(samples, train_fraction=0.9, seed=0)
        assert train.n_samples == 900
        assert train.days.max() > test.days.min()  # leakage by construction

    def test_random_split_validates_fraction(self):
        with pytest.raises(ValueError):
            TimepointSplit.random_split(_samples([1, 2]), train_fraction=1.5)


class TestTimeSeriesCrossValidator:
    def test_yields_k_folds(self):
        cv = TimeSeriesCrossValidator(k=3)
        folds = list(cv.split(np.arange(60).reshape(-1, 1)))
        assert len(folds) == 3
        assert cv.n_splits == 3

    def test_validation_strictly_after_training(self):
        cv = TimeSeriesCrossValidator(k=4)
        X = np.arange(80).reshape(-1, 1)  # rows already chronological
        for train, validation in cv.split(X):
            assert train.max() < validation.min()

    def test_train_is_k_consecutive_subsets(self):
        cv = TimeSeriesCrossValidator(k=2)
        X = np.arange(8).reshape(-1, 1)
        folds = list(cv.split(X))
        # 2k = 4 subsets of 2: fold 0 trains on rows 0-3, validates 4-5.
        np.testing.assert_array_equal(folds[0][0], [0, 1, 2, 3])
        np.testing.assert_array_equal(folds[0][1], [4, 5])
        np.testing.assert_array_equal(folds[1][0], [2, 3, 4, 5])
        np.testing.assert_array_equal(folds[1][1], [6, 7])

    def test_folds_cover_later_half(self):
        cv = TimeSeriesCrossValidator(k=3)
        X = np.arange(66).reshape(-1, 1)
        validated = np.concatenate([v for _, v in cv.split(X)])
        # Validation subsets are k+1 .. 2k — the chronologically later part.
        assert validated.min() >= 33 - 11

    def test_too_few_rows_raise(self):
        with pytest.raises(ValueError, match="at least"):
            list(TimeSeriesCrossValidator(k=5).split(np.ones((7, 1))))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TimeSeriesCrossValidator(k=0)

    def test_unsorted_days_raise(self):
        """Regression: shuffled rows used to pass silently, leaking
        future records into the training folds."""
        rng = np.random.default_rng(0)
        days = rng.permutation(40)
        X = np.arange(40).reshape(-1, 1)
        cv = TimeSeriesCrossValidator(k=2, days=days)
        with pytest.raises(ValueError, match="chronological"):
            list(cv.split(X))

    def test_sorted_days_accepted(self):
        days = np.repeat(np.arange(20), 2)  # ties are fine, regressions are not
        cv = TimeSeriesCrossValidator(k=2, days=days)
        assert len(list(cv.split(np.zeros((40, 1))))) == 2

    def test_days_length_mismatch_raises(self):
        cv = TimeSeriesCrossValidator(k=2, days=np.arange(10))
        with pytest.raises(ValueError, match="entries"):
            list(cv.split(np.zeros((12, 1))))

    def test_days_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            TimeSeriesCrossValidator(k=2, days=np.zeros((4, 2)))

    def test_works_with_grid_search(self, binary_blobs):
        from repro.ml.model_selection import GridSearchCV
        from repro.ml.tree import DecisionTreeClassifier

        X, y = binary_blobs
        search = GridSearchCV(
            DecisionTreeClassifier(seed=0),
            {"max_depth": [2, 5]},
            splitter=TimeSeriesCrossValidator(k=3),
        )
        search.fit(X, y)
        assert search.best_params_["max_depth"] in (2, 5)
