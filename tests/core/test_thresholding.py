"""Unit tests for cost-sensitive / budgeted threshold tuning."""

import numpy as np
import pytest

from repro.core.thresholding import (
    CostModel,
    tune_threshold_cost,
    tune_threshold_fpr_budget,
    tune_threshold_youden,
)


@pytest.fixture()
def separable():
    y = np.array([0] * 50 + [1] * 50)
    scores = np.concatenate([np.linspace(0, 0.4, 50), np.linspace(0.6, 1.0, 50)])
    return y, scores


@pytest.fixture()
def overlapping():
    generator = np.random.default_rng(0)
    y = np.array([0] * 300 + [1] * 100)
    scores = np.concatenate(
        [generator.beta(2, 5, 300), generator.beta(5, 2, 100)]
    )
    return y, scores


class TestYouden:
    def test_separable_achieves_perfect_point(self, separable):
        y, scores = separable
        choice = tune_threshold_youden(y, scores)
        assert choice.tpr == 1.0
        assert choice.fpr == 0.0
        assert 0.4 < choice.threshold <= 0.6
        assert choice.objective_value == 1.0

    def test_overlapping_better_than_extremes(self, overlapping):
        y, scores = overlapping
        choice = tune_threshold_youden(y, scores)
        assert 0.2 < choice.objective_value <= 1.0


class TestFprBudget:
    def test_budget_respected(self, overlapping):
        y, scores = overlapping
        for budget in (0.01, 0.05, 0.2):
            choice = tune_threshold_fpr_budget(y, scores, max_fpr=budget)
            assert choice.fpr <= budget

    def test_looser_budget_higher_tpr(self, overlapping):
        y, scores = overlapping
        strict = tune_threshold_fpr_budget(y, scores, max_fpr=0.01)
        loose = tune_threshold_fpr_budget(y, scores, max_fpr=0.3)
        assert loose.tpr >= strict.tpr

    def test_zero_budget_feasible_on_separable(self, separable):
        y, scores = separable
        choice = tune_threshold_fpr_budget(y, scores, max_fpr=0.0)
        assert choice.fpr == 0.0
        assert choice.tpr == 1.0

    def test_invalid_budget(self, separable):
        y, scores = separable
        with pytest.raises(ValueError):
            tune_threshold_fpr_budget(y, scores, max_fpr=1.5)


class TestCost:
    def test_expensive_misses_push_threshold_down(self, overlapping):
        y, scores = overlapping
        miss_heavy = tune_threshold_cost(
            y, scores, CostModel(miss_cost=10_000.0, false_alarm_cost=1.0)
        )
        alarm_heavy = tune_threshold_cost(
            y, scores, CostModel(miss_cost=1.0, false_alarm_cost=10_000.0)
        )
        assert miss_heavy.threshold < alarm_heavy.threshold
        assert miss_heavy.tpr >= alarm_heavy.tpr

    def test_cost_value_matches_model(self, separable):
        y, scores = separable
        model = CostModel(miss_cost=100.0, false_alarm_cost=10.0)
        choice = tune_threshold_cost(y, scores, model)
        # Perfect separation -> zero cost achievable.
        assert choice.objective_value == 0.0

    def test_expected_cost_formula(self):
        model = CostModel(miss_cost=500.0, false_alarm_cost=40.0, true_alarm_benefit=5.0)
        assert model.expected_cost(tp=2, fp=3, fn=4, tn=100) == pytest.approx(
            4 * 500 + 3 * 40 - 2 * 5
        )

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(miss_cost=-1.0)


class TestIntegrationWithMFPA:
    def test_tuning_on_validation_scores(self, small_fleet):
        from repro.core import MFPA, MFPAConfig
        from repro.core.labeling import build_samples

        model = MFPA(MFPAConfig())
        model.fit(small_fleet, train_end_day=240)
        samples = build_samples(model.dataset_, model.failure_times_)
        in_validation = (samples.days >= 200) & (samples.days < 240)
        rows = samples.row_indices[in_validation]
        labels = samples.labels[in_validation]
        if labels.sum() == 0:
            pytest.skip("no validation positives on this seed")
        scores = model.predict_proba_rows(rows)
        choice = tune_threshold_fpr_budget(labels, scores, max_fpr=0.02)
        assert 0.0 <= choice.threshold <= 1.0
        assert choice.fpr <= 0.02
