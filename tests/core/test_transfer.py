"""Unit tests for cross-vendor transfer (extension)."""

import numpy as np
import pytest

from repro.core.pipeline import MFPA, MFPAConfig
from repro.core.transfer import TransferredMFPA
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet


@pytest.fixture(scope="module")
def source_fleet():
    return simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 400}), horizon_days=420, failure_boost=25.0, seed=51
        )
    )


@pytest.fixture(scope="module")
def target_fleet():
    # Vendor IV with few drives: the data-starved minority vendor.
    return simulate_fleet(
        FleetConfig(
            mix=VendorMix({"IV": 160}), horizon_days=420, failure_boost=90.0, seed=52
        )
    )


@pytest.fixture(scope="module")
def fitted_transfer(source_fleet, target_fleet):
    transfer = TransferredMFPA(MFPAConfig())
    transfer.fit(source_fleet, target_fleet, train_end_day=300, validation_days=60)
    return transfer


class TestTransferredMFPA:
    def test_alpha_in_unit_interval(self, fitted_transfer):
        assert 0.0 <= fitted_transfer.alpha <= 1.0

    def test_result_records_ingredients(self, fitted_transfer):
        result = fitted_transfer.result_
        assert result.alpha == fitted_transfer.alpha

    def test_blend_is_convex_combination(self, fitted_transfer):
        rows = np.arange(50)
        blended = fitted_transfer.predict_proba_rows(rows)
        target = fitted_transfer.target_model.predict_proba_rows(rows)
        source = fitted_transfer._source_scores(rows)
        lower = np.minimum(target, source) - 1e-12
        upper = np.maximum(target, source) + 1e-12
        assert np.all(blended >= lower)
        assert np.all(blended <= upper)

    def test_evaluation_works(self, fitted_transfer):
        result = fitted_transfer.evaluate(300, 420)
        assert 0.0 <= result.drive_report.tpr <= 1.0
        assert result.n_healthy_drives > 0

    def test_evaluate_restores_target_scorer(self, fitted_transfer):
        target = fitted_transfer.target_model
        before = target.predict_proba_rows
        fitted_transfer.evaluate(300, 420)
        assert target.predict_proba_rows == before

    def test_transfer_not_worse_than_target_alone(
        self, fitted_transfer, target_fleet
    ):
        native = MFPA(MFPAConfig())
        native.fit(target_fleet, train_end_day=300)
        native_auc = native.evaluate(300, 420).drive_report.auc
        blended_auc = fitted_transfer.evaluate(300, 420).drive_report.auc
        # Transfer must be competitive (within noise) on the minority
        # vendor; often it is strictly better.
        assert blended_auc >= native_auc - 0.07

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            TransferredMFPA().predict_proba_rows(np.arange(3))

    def test_validation_days_floor(self, source_fleet, target_fleet):
        with pytest.raises(ValueError):
            TransferredMFPA().fit(
                source_fleet, target_fleet, train_end_day=300, validation_days=3
            )
