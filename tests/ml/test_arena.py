"""Binned forest-arena prediction engine: bit-identity and NaN routing.

The arena (:mod:`repro.ml.arena`) packs every tree of a fitted ensemble
into one contiguous node table and descends all (row, tree) lanes
simultaneously — either comparing raw feature floats ("float" engine) or
integer bin codes against quantized thresholds ("binned" engine). Both
must reproduce the seed per-tree traversal **bit for bit**: every
threshold appears verbatim in its feature's code table, so
``code(v) <= code(t)`` iff ``v <= t``, and NaN routes right exactly like
``_Tree.predict_value`` (a NaN comparison is False) via a reserved
largest bin code.
"""

import numpy as np
import pytest

from repro.ml.arena import (
    ForestArena,
    get_inference_mode,
    set_inference_mode,
)
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture(autouse=True)
def restore_mode():
    previous = get_inference_mode()
    yield
    set_inference_mode(previous)


def _problem(seed: int = 0, n: int = 400, d: int = 6):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[:, 3] = rng.integers(0, 5, n)
    y = ((X[:, 0] + 0.5 * X[:, 1] ** 2 > 1) ^ (rng.random(n) < 0.1)).astype(int)
    return X, y


def _fresh_rows(seed: int = 99, n: int = 500, d: int = 6) -> np.ndarray:
    """Unseen rows, deliberately wider-ranged than the training data so
    codes fall outside every table's interior as well as inside it."""
    rng = np.random.default_rng(seed)
    return rng.normal(scale=3.0, size=(n, d))


def _with_mode(mode, fn):
    previous = set_inference_mode(mode)
    try:
        return fn()
    finally:
        set_inference_mode(previous)


class TestEngineParity:
    """Float and binned engines are bit-identical to the seed loops."""

    @pytest.mark.parametrize("algo", ["exact", "hist"])
    def test_forest_probas_bit_identical(self, algo):
        X, y = _problem()
        model = RandomForestClassifier(
            n_estimators=8, max_depth=6, seed=0, split_algorithm=algo
        ).fit(X, y)
        rows = _fresh_rows()
        exact = _with_mode("exact", lambda: model.predict_proba(rows))
        for mode in ("float", "binned", "auto"):
            got = _with_mode(mode, lambda: model.predict_proba(rows))
            np.testing.assert_array_equal(got, exact)

    @pytest.mark.parametrize("algo", ["exact", "hist"])
    def test_gbdt_probas_bit_identical(self, algo):
        X, y = _problem(seed=1)
        model = GradientBoostingClassifier(
            n_estimators=12, max_depth=3, split_algorithm=algo
        ).fit(X, y)
        rows = _fresh_rows(seed=7)
        exact = _with_mode("exact", lambda: model.predict_proba(rows))
        for mode in ("float", "binned", "auto"):
            got = _with_mode(mode, lambda: model.predict_proba(rows))
            np.testing.assert_array_equal(got, exact)

    def test_forest_regressor_bit_identical(self):
        X, _ = _problem(seed=2)
        y = X[:, 1] * 2 + np.abs(X[:, 0])
        model = RandomForestRegressor(n_estimators=6, max_depth=6, seed=0).fit(
            X, y
        )
        rows = _fresh_rows(seed=3)
        exact = _with_mode("exact", lambda: model.predict(rows))
        for mode in ("float", "binned", "auto"):
            got = _with_mode(mode, lambda: model.predict(rows))
            np.testing.assert_array_equal(got, exact)

    def test_alarm_parity(self):
        """Thresholded alarms — the operational output — are identical,
        not merely the probabilities (ΔTPR 0.000, ΔFPR 0.000)."""
        X, y = _problem(seed=4)
        model = RandomForestClassifier(
            n_estimators=10, max_depth=8, seed=0
        ).fit(X, y)
        rows = _fresh_rows(seed=5)
        exact = _with_mode("exact", lambda: model.predict_proba(rows))[:, 1]
        binned = _with_mode("binned", lambda: model.predict_proba(rows))[:, 1]
        np.testing.assert_array_equal(binned >= 0.5, exact >= 0.5)

    def test_unbounded_depth_parity(self):
        """max_depth=None trees terminate through the arena's measured
        BFS depth bound, not a guessed iteration cap."""
        X, y = _problem(seed=6, n=600)
        model = RandomForestClassifier(n_estimators=4, seed=0).fit(X, y)
        rows = _fresh_rows(seed=8)
        exact = _with_mode("exact", lambda: model.predict_proba(rows))
        binned = _with_mode("binned", lambda: model.predict_proba(rows))
        np.testing.assert_array_equal(binned, exact)


class TestNaNRouting:
    """The pinned NaN contract: a NaN feature fails ``value <= threshold``
    at every split and routes right, in ``_Tree.predict_value``, the
    float engine, and the binned engine's reserved NaN bin alike."""

    def _nan_fixture(self):
        X, y = _problem(seed=11)
        model = RandomForestClassifier(
            n_estimators=5, max_depth=6, seed=0
        ).fit(X, y)
        _with_mode("auto", lambda: model.predict_proba(X[:4]))  # build arena
        rows = _fresh_rows(seed=12, n=64)
        rows[::3, 0] = np.nan
        rows[::5, 3] = np.nan
        rows[7] = np.nan  # an all-NaN row
        return model, rows

    def test_tree_predict_value_routes_nan_right(self):
        model, rows = self._nan_fixture()
        for tree_model in model.trees_:
            tree = tree_model.tree_
            leaf_values = tree.predict_value(rows)
            # Manually walk each row: NaN comparison is False -> right.
            for i, row in enumerate(rows):
                node = 0
                while tree.feature[node] >= 0:
                    value = row[tree.feature[node]]
                    if value <= tree.threshold[node]:
                        node = tree.left[node]
                    else:
                        node = tree.right[node]
                np.testing.assert_array_equal(
                    leaf_values[i], tree.value[node]
                )

    def test_engines_match_trees_on_nan(self):
        model, rows = self._nan_fixture()
        arena = model._arena_
        float_leaves = arena._descend(rows, None)
        binned_leaves = arena._descend(rows, arena.encode(rows))
        np.testing.assert_array_equal(binned_leaves, float_leaves)
        expected = np.stack(
            [m.tree_.predict_value(rows) for m in model.trees_], axis=1
        )
        leaves = float_leaves.reshape(rows.shape[0], arena.n_trees)
        got = arena.values[leaves]
        np.testing.assert_array_equal(got[:, :, : expected.shape[2]], expected)

    def test_nan_codes_use_reserved_bin(self):
        model, rows = self._nan_fixture()
        arena = model._arena_
        codes = arena.encode(rows)
        for feature_index in range(arena.n_features):
            table = arena.code_tables[feature_index]
            nan_rows = np.isnan(rows[:, feature_index])
            assert np.all(codes[nan_rows, feature_index] == table.size + 1)
            assert np.all(codes[~nan_rows, feature_index] <= table.size)


class TestModeControl:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown inference mode"):
            set_inference_mode("vectorized")

    def test_set_returns_previous(self):
        first = set_inference_mode("exact")
        assert set_inference_mode(first) == "exact"

    def test_forced_binned_without_tables_raises(self):
        X, y = _problem(seed=13)
        trees = [
            DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y).tree_
        ]
        arena = ForestArena.from_trees(trees, n_features=X.shape[1])
        set_inference_mode("binned")
        with pytest.raises(RuntimeError, match="code tables"):
            arena.predict_mean(X[:8])

    def test_cached_arena_reused_and_reset_by_fit(self):
        X, y = _problem(seed=14)
        model = RandomForestClassifier(n_estimators=3, max_depth=4, seed=0).fit(
            X, y
        )
        _with_mode("auto", lambda: model.predict_proba(X[:8]))
        first = model._arena_
        assert first is not None
        _with_mode("auto", lambda: model.predict_proba(X[:8]))
        assert model._arena_ is first
        model.fit(X, y)
        assert model._arena_ is None
