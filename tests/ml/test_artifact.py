"""Versioned model artifacts: round-trip bit-identity and corruption.

``save_model`` writes a self-describing directory — schema-versioned
``manifest.json`` with per-file sha256, tree family packed into npz,
optional reference profile — through the same atomic-write discipline
as the serve checkpoints. ``load_model`` must give back a model whose
probabilities AND thresholded alarms are bit-identical at every
``n_jobs``, and must refuse (with :class:`ArtifactCorruptError`) any
artifact whose bytes, file set, or schema version do not match the
manifest.
"""

import json
import shutil

import numpy as np
import pytest

from repro.ml.artifact import (
    MANIFEST_FILE,
    ArtifactCorruptError,
    artifact_hash,
    inspect_artifact,
    load_model,
    save_model,
)
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def _problem(seed: int = 0, n: int = 300, d: int = 5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[:, 2] = rng.integers(0, 6, n)
    y = ((X[:, 0] + X[:, 2] > 1.5) ^ (rng.random(n) < 0.1)).astype(int)
    return X, y


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DecisionTreeClassifier(max_depth=5, seed=1),
            lambda: RandomForestClassifier(n_estimators=6, max_depth=5, seed=2),
            lambda: RandomForestClassifier(
                n_estimators=4, max_depth=4, seed=3, split_algorithm="hist"
            ),
            lambda: GradientBoostingClassifier(n_estimators=8, max_depth=3),
        ],
        ids=["tree", "forest", "forest-hist", "gbdt"],
    )
    def test_classifier_probas_and_alarms_bit_identical(self, factory, tmp_path):
        X, y = _problem()
        model = factory().fit(X, y)
        rows = np.random.default_rng(9).normal(scale=2.0, size=(200, X.shape[1]))
        expected = model.predict_proba(rows)
        save_model(model, tmp_path / "artifact")
        loaded = load_model(tmp_path / "artifact")
        got = loaded.predict_proba(rows)
        np.testing.assert_array_equal(got, expected)
        np.testing.assert_array_equal(
            got[:, 1] >= 0.5, expected[:, 1] >= 0.5
        )
        np.testing.assert_array_equal(loaded.predict(rows), model.predict(rows))

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_forest_n_jobs_invariant(self, n_jobs, tmp_path):
        """The loaded model scores identically whether the original was
        fitted serially or on a pool, and regardless of the loader's
        parallelism setting."""
        X, y = _problem(seed=4)
        model = RandomForestClassifier(
            n_estimators=6, max_depth=5, seed=0, n_jobs=n_jobs
        ).fit(X, y)
        rows = np.random.default_rng(5).normal(size=(150, X.shape[1]))
        expected = model.predict_proba(rows)
        save_model(model, tmp_path / "artifact")
        loaded = load_model(tmp_path / "artifact")
        np.testing.assert_array_equal(loaded.predict_proba(rows), expected)

    def test_regressors_round_trip(self, tmp_path):
        X, _ = _problem(seed=6)
        y = X[:, 1] * 3 + np.abs(X[:, 0])
        for name, model in (
            ("tree", DecisionTreeRegressor(max_depth=4, seed=0).fit(X, y)),
            (
                "forest",
                RandomForestRegressor(n_estimators=5, max_depth=4, seed=0).fit(
                    X, y
                ),
            ),
        ):
            save_model(model, tmp_path / name)
            loaded = load_model(tmp_path / name)
            np.testing.assert_array_equal(loaded.predict(X), model.predict(X))

    def test_hist_bin_edges_restored(self, tmp_path):
        X, y = _problem(seed=7)
        model = RandomForestClassifier(
            n_estimators=4, max_depth=4, seed=0, split_algorithm="hist"
        ).fit(X, y)
        save_model(model, tmp_path / "artifact")
        loaded = load_model(tmp_path / "artifact")
        assert len(loaded.bin_edges_) == len(model.bin_edges_)
        for got, expected in zip(loaded.bin_edges_, model.bin_edges_):
            np.testing.assert_array_equal(got, expected)

    def test_load_mobility(self, tmp_path):
        """An artifact directory can be moved/renamed wholesale — no
        absolute paths are baked in."""
        X, y = _problem(seed=8)
        model = RandomForestClassifier(n_estimators=3, max_depth=4, seed=0).fit(
            X, y
        )
        save_model(model, tmp_path / "original")
        shutil.move(str(tmp_path / "original"), str(tmp_path / "relocated"))
        loaded = load_model(tmp_path / "relocated")
        np.testing.assert_array_equal(
            loaded.predict_proba(X), model.predict_proba(X)
        )


class TestManifest:
    def _saved(self, tmp_path):
        X, y = _problem(seed=10)
        model = RandomForestClassifier(n_estimators=3, max_depth=4, seed=0).fit(
            X, y
        )
        directory = tmp_path / "artifact"
        save_model(model, directory)
        return directory

    def test_inspect_reports_identity(self, tmp_path):
        directory = self._saved(tmp_path)
        info = inspect_artifact(directory)
        assert info["schema_version"] == 1
        assert info["class"] == "RandomForestClassifier"
        assert info["verified"] is True
        assert info["artifact_hash"] == artifact_hash(directory)
        assert "model.npz" in info["files"]

    def test_hash_stable_and_content_sensitive(self, tmp_path):
        directory = self._saved(tmp_path)
        assert artifact_hash(directory) == artifact_hash(directory)
        manifest = json.loads((directory / MANIFEST_FILE).read_text())
        manifest["params"]["n_estimators"] = 99
        (directory / MANIFEST_FILE).write_text(json.dumps(manifest))
        assert artifact_hash(directory) != artifact_hash(self._saved(tmp_path / "b"))


class TestCorruption:
    def _saved(self, tmp_path):
        X, y = _problem(seed=11)
        model = RandomForestClassifier(n_estimators=3, max_depth=4, seed=0).fit(
            X, y
        )
        directory = tmp_path / "artifact"
        save_model(model, directory)
        return directory

    def test_flipped_payload_byte_refused(self, tmp_path):
        directory = self._saved(tmp_path)
        payload = bytearray((directory / "model.npz").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (directory / "model.npz").write_bytes(bytes(payload))
        with pytest.raises(ArtifactCorruptError, match="sha256"):
            load_model(directory)

    def test_truncated_payload_refused(self, tmp_path):
        directory = self._saved(tmp_path)
        payload = (directory / "model.npz").read_bytes()
        (directory / "model.npz").write_bytes(payload[: len(payload) // 2])
        with pytest.raises(ArtifactCorruptError):
            load_model(directory)

    def test_missing_file_refused(self, tmp_path):
        directory = self._saved(tmp_path)
        (directory / "model.npz").unlink()
        with pytest.raises(ArtifactCorruptError, match="missing"):
            load_model(directory)

    def test_schema_version_mismatch_refused(self, tmp_path):
        directory = self._saved(tmp_path)
        manifest = json.loads((directory / MANIFEST_FILE).read_text())
        manifest["schema_version"] = 99
        (directory / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactCorruptError, match="schema"):
            load_model(directory)

    def test_garbled_manifest_refused(self, tmp_path):
        directory = self._saved(tmp_path)
        (directory / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(ArtifactCorruptError):
            load_model(directory)

    def test_absent_manifest_is_not_an_artifact(self, tmp_path):
        directory = self._saved(tmp_path)
        (directory / MANIFEST_FILE).unlink()
        with pytest.raises(FileNotFoundError):
            load_model(directory)
