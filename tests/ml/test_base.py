"""Unit tests for the estimator base class and clone()."""

import numpy as np
import pytest

from repro.ml.base import BaseClassifier, check_X, check_X_y, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes


class TestParams:
    def test_get_params_reflects_constructor(self):
        model = RandomForestClassifier(n_estimators=7, max_depth=3)
        params = model.get_params()
        assert params["n_estimators"] == 7
        assert params["max_depth"] == 3

    def test_set_params_roundtrip(self):
        model = GaussianNaiveBayes()
        model.set_params(var_smoothing=0.5)
        assert model.var_smoothing == 0.5

    def test_set_invalid_param_raises(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            GaussianNaiveBayes().set_params(bogus=1)

    def test_clone_is_unfitted_copy(self, binary_blobs):
        X, y = binary_blobs
        model = GaussianNaiveBayes(var_smoothing=1e-8).fit(X, y)
        copy = clone(model)
        assert copy.var_smoothing == 1e-8
        assert not hasattr(copy, "classes_")

    def test_clone_preserves_all_params(self):
        model = RandomForestClassifier(n_estimators=3, max_features="log2", seed=11)
        copy = clone(model)
        assert copy.get_params() == model.get_params()


class TestValidation:
    def test_check_X_y_accepts_2d(self):
        X, y = check_X_y([[1.0, 2.0]], [1])
        assert X.shape == (1, 2) and y.shape == (1,)

    def test_check_X_y_rejects_1d_X(self):
        with pytest.raises(ValueError, match="2-D or 3-D"):
            check_X_y(np.ones(3), np.ones(3))

    def test_check_X_y_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="samples"):
            check_X_y(np.ones((3, 2)), np.ones(4))

    def test_check_X_y_rejects_nan(self):
        X = np.ones((2, 2))
        X[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_X_y(X, np.ones(2))

    def test_check_X_y_rejects_empty(self):
        with pytest.raises(ValueError, match="zero samples"):
            check_X_y(np.ones((0, 2)), np.ones(0))

    def test_check_X_feature_count(self):
        with pytest.raises(ValueError, match="features"):
            check_X(np.ones((2, 3)), n_features=4)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GaussianNaiveBayes().predict(np.ones((1, 2)))

    def test_score_returns_accuracy(self, binary_blobs):
        X, y = binary_blobs
        model = GaussianNaiveBayes().fit(X, y)
        assert 0.9 <= model.score(X, y) <= 1.0

    def test_base_class_is_abstract(self):
        base = BaseClassifier()
        with pytest.raises(NotImplementedError):
            base.fit(np.ones((2, 2)), np.ones(2))
        with pytest.raises(NotImplementedError):
            base.predict_proba(np.ones((2, 2)))
