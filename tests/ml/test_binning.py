"""Unit tests for quantile pre-binning (`repro.ml.binning`)."""

import numpy as np
import pytest

from repro.ml.binning import (
    DEFAULT_BINS,
    MAX_BINS,
    BinnedDataset,
    binned_fingerprint,
    build_binned,
    clear_binned_cache,
    get_binned,
    set_binned_cache_limit,
)
from repro.obs import get_registry


@pytest.fixture(autouse=True)
def clean_cache():
    clear_binned_cache()
    previous = set_binned_cache_limit(None)
    yield
    set_binned_cache_limit(previous)
    clear_binned_cache()


def _counter(name: str) -> float:
    return get_registry().counter(name).value


class TestBuildBinned:
    def test_lossless_when_few_distinct_values(self):
        X = np.array([[0.0], [1.0], [2.0], [1.0], [0.0]])
        binned = build_binned(X)
        # Midpoint edges: codes preserve the full ordering information.
        np.testing.assert_allclose(binned.bin_edges[0], [0.5, 1.5])
        np.testing.assert_array_equal(binned.codes[:, 0], [0, 1, 2, 1, 0])

    def test_codes_preserve_order(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (500, 3))
        binned = build_binned(X, max_bins=32)
        for j in range(3):
            order = np.argsort(X[:, j], kind="stable")
            codes = binned.codes[order, j]
            assert np.all(np.diff(codes.astype(int)) >= 0)

    def test_quantile_binning_caps_bin_count(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (4000, 1))
        binned = build_binned(X, max_bins=16)
        assert len(binned.bin_edges[0]) <= 15
        assert binned.codes[:, 0].max() <= 15

    def test_nan_rows_take_reserved_top_bin(self):
        X = np.array([[0.0], [1.0], [np.nan], [2.0]])
        binned = build_binned(X)
        nan_code = binned.codes[2, 0]
        assert nan_code == len(binned.bin_edges[0]) + 1
        assert nan_code > binned.codes[[0, 1, 3], 0].max()

    def test_constant_column_single_bin(self):
        X = np.ones((10, 1))
        binned = build_binned(X)
        assert len(binned.bin_edges[0]) == 0
        assert np.all(binned.codes == 0)

    def test_cut_thresholds_padded_with_inf(self):
        X = np.column_stack([np.arange(5.0), np.zeros(5)])
        binned = build_binned(X)
        # Feature 1 is constant: every cut threshold is the +inf pad.
        assert np.all(np.isinf(binned.cut_thresholds[1]))

    def test_invalid_max_bins_rejected(self):
        X = np.zeros((4, 1))
        with pytest.raises(ValueError, match="max_bins"):
            build_binned(X, max_bins=1)
        with pytest.raises(ValueError, match="max_bins"):
            build_binned(X, max_bins=MAX_BINS + 1)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            build_binned(np.zeros(5))


class TestViews:
    def test_take_shares_edges(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (100, 4))
        binned = build_binned(X)
        rows = np.array([3, 3, 7, 50])
        view = binned.take(rows)
        assert view.bin_edges is binned.bin_edges
        assert view.n_bins == binned.n_bins
        np.testing.assert_array_equal(view.codes, binned.codes[rows])

    def test_column_view_subsets_everything(self):
        rng = np.random.default_rng(3)
        X = rng.normal(0, 1, (50, 5))
        binned = build_binned(X)
        view = binned.column_view([4, 1])
        assert view.n_features == 2
        np.testing.assert_array_equal(view.codes, binned.codes[:, [4, 1]])
        np.testing.assert_allclose(view.bin_edges[0], binned.bin_edges[4])
        np.testing.assert_allclose(
            view.cut_thresholds, binned.cut_thresholds[[4, 1]]
        )


class TestCache:
    def test_repeat_lookup_is_a_hit(self):
        rng = np.random.default_rng(4)
        X = rng.normal(0, 1, (200, 3))
        hits0 = _counter("tree_bin_cache_hits_total")
        misses0 = _counter("tree_bin_cache_misses_total")
        first = get_binned(X)
        second = get_binned(X)
        assert second is first
        assert _counter("tree_bin_cache_misses_total") == misses0 + 1
        assert _counter("tree_bin_cache_hits_total") == hits0 + 1

    def test_row_subsets_are_distinct_entries(self):
        rng = np.random.default_rng(5)
        X = rng.normal(0, 1, (200, 3))
        fold_a = np.arange(100)
        fold_b = np.arange(100, 200)
        a = get_binned(X, fold_a)
        b = get_binned(X, fold_b)
        assert a is not b
        assert a.n_rows == b.n_rows == 100
        assert get_binned(X, fold_a) is a

    def test_fold_edges_see_no_future_rows(self):
        # The train fold is 0..99; an extreme value in the future rows
        # must not shift the fold's bin edges.
        rng = np.random.default_rng(6)
        X = rng.normal(0, 1, (200, 1))
        train = np.arange(100)
        with_future = X.copy()
        with_future[150, 0] = 1e9
        a = get_binned(X, train)
        b = get_binned(with_future, train)
        np.testing.assert_allclose(a.bin_edges[0], b.bin_edges[0])

    def test_fingerprint_keys(self):
        rng = np.random.default_rng(7)
        X = rng.normal(0, 1, (64, 2))
        rows = np.arange(32)
        assert binned_fingerprint(X) == binned_fingerprint(X)
        assert binned_fingerprint(X) != binned_fingerprint(X, rows)
        assert binned_fingerprint(X) != binned_fingerprint(X, max_bins=16)
        assert binned_fingerprint(X) != binned_fingerprint(X + 1.0)

    def test_build_records_fingerprint(self):
        X = np.zeros((8, 1))
        binned = get_binned(X)
        assert binned.fingerprint == binned_fingerprint(X)
        assert build_binned(X).fingerprint is None


class TestEviction:
    def test_lru_evicts_oldest_and_counts(self):
        set_binned_cache_limit(2)
        evictions0 = _counter("tree_bin_cache_evictions_total")
        matrices = [np.full((4, 1), float(i)) for i in range(3)]
        first = get_binned(matrices[0])
        second = get_binned(matrices[1])
        assert _counter("tree_bin_cache_evictions_total") == evictions0
        third = get_binned(matrices[2])
        assert _counter("tree_bin_cache_evictions_total") == evictions0 + 1
        # Survivors are still hits; the evicted entry rebuilds.
        assert get_binned(matrices[1]) is second
        assert get_binned(matrices[2]) is third
        assert get_binned(matrices[0]) is not first

    def test_hit_refreshes_recency(self):
        set_binned_cache_limit(2)
        matrices = [np.full((4, 1), float(i)) for i in range(3)]
        first = get_binned(matrices[0])
        get_binned(matrices[1])
        get_binned(matrices[0])  # hit: now most recent
        get_binned(matrices[2])  # evicts matrices[1], not matrices[0]
        assert get_binned(matrices[0]) is first

    def test_shrinking_limit_evicts_immediately(self):
        matrices = [np.full((4, 1), float(i)) for i in range(3)]
        entries = [get_binned(X) for X in matrices]
        evictions0 = _counter("tree_bin_cache_evictions_total")
        set_binned_cache_limit(1)
        assert _counter("tree_bin_cache_evictions_total") == evictions0 + 2
        assert get_binned(matrices[2]) is entries[2]

    def test_limit_restores_default_and_rejects_zero(self):
        assert set_binned_cache_limit(5) >= 1
        assert set_binned_cache_limit(None) == 5
        with pytest.raises(ValueError, match="at least 1"):
            set_binned_cache_limit(0)


def test_default_bins_within_uint8_budget():
    assert 2 <= DEFAULT_BINS <= MAX_BINS
    # DEFAULT_BINS value bins + the NaN bin must fit in uint8 codes.
    assert DEFAULT_BINS + 1 <= 255


def test_binned_dataset_shape_properties():
    X = np.zeros((7, 3))
    binned = build_binned(X)
    assert isinstance(binned, BinnedDataset)
    assert binned.n_rows == 7
    assert binned.n_features == 3
