"""Unit tests for Platt scaling and reliability measurement."""

import numpy as np
import pytest

from repro.ml.calibration import PlattCalibrator, reliability_curve


def _miscalibrated_scores(n=2000, seed=0):
    """Overconfident scores: true probability is sigmoid(logit/3)."""
    generator = np.random.default_rng(seed)
    logits = generator.normal(0, 4, n)
    true_probability = 1 / (1 + np.exp(-logits / 3))
    y = (generator.random(n) < true_probability).astype(int)
    overconfident = 1 / (1 + np.exp(-logits))
    return overconfident, y


class TestPlattCalibrator:
    def test_improves_calibration_error(self):
        scores, y = _miscalibrated_scores()
        calibrated = PlattCalibrator().fit_transform(scores, y)
        before = reliability_curve(y, scores)["ece"]
        after = reliability_curve(y, calibrated)["ece"]
        assert after < before

    def test_preserves_ranking(self):
        scores, y = _miscalibrated_scores()
        calibrated = PlattCalibrator().fit_transform(scores, y)
        order_before = np.argsort(scores)
        order_after = np.argsort(calibrated)
        np.testing.assert_array_equal(order_before, order_after)

    def test_outputs_are_probabilities(self):
        scores, y = _miscalibrated_scores()
        calibrated = PlattCalibrator().fit_transform(scores, y)
        assert np.all(calibrated >= 0)
        assert np.all(calibrated <= 1)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            PlattCalibrator().fit(np.array([0.1, 0.9]), np.array([1, 1]))

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            PlattCalibrator().transform(np.array([0.5]))

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            PlattCalibrator().fit(np.ones(3), np.ones(2))

    def test_well_calibrated_input_nearly_unchanged(self):
        generator = np.random.default_rng(1)
        probability = generator.random(5000)
        y = (generator.random(5000) < probability).astype(int)
        calibrated = PlattCalibrator().fit_transform(probability, y)
        # Correlate strongly with the identity.
        assert np.corrcoef(probability, calibrated)[0, 1] > 0.99


class TestReliabilityCurve:
    def test_perfect_calibration_low_ece(self):
        generator = np.random.default_rng(2)
        probability = generator.random(20000)
        y = (generator.random(20000) < probability).astype(int)
        curve = reliability_curve(y, probability)
        assert curve["ece"] < 0.03

    def test_bins_cover_counts(self):
        generator = np.random.default_rng(3)
        probability = generator.random(500)
        y = generator.integers(0, 2, 500)
        curve = reliability_curve(y, probability, n_bins=5)
        assert curve["bin_counts"].sum() == 500
        assert curve["bin_centers"].shape == (5,)

    def test_brier_bounds(self):
        y = np.array([1, 0, 1, 0])
        perfect = reliability_curve(y, y.astype(float))
        worst = reliability_curve(y, 1.0 - y.astype(float))
        assert perfect["brier"] == 0.0
        assert worst["brier"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_curve(np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            reliability_curve(np.ones(3), np.ones(3), n_bins=1)
