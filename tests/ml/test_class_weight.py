"""Unit tests for cost-sensitive (class-weighted) trees and forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import false_positive_rate, true_positive_rate
from repro.ml.tree import DecisionTreeClassifier


def _imbalanced_overlap(n_minority=40, n_majority=800, seed=0):
    """Overlapping classes: unweighted trees favor the majority."""
    generator = np.random.default_rng(seed)
    majority = generator.normal(0.0, 1.0, (n_majority, 4))
    minority = generator.normal(1.0, 1.0, (n_minority, 4))
    X = np.vstack([majority, minority])
    y = np.array([0] * n_majority + [1] * n_minority)
    order = generator.permutation(y.size)
    return X[order], y[order]


class TestWeightedTree:
    def test_unweighted_equals_none(self, binary_blobs):
        X, y = binary_blobs
        plain = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        weighted_ones = DecisionTreeClassifier(max_depth=4, seed=0)
        weighted_ones.fit(X, y, sample_weight=np.ones(y.size))
        np.testing.assert_allclose(
            plain.predict_proba(X), weighted_ones.predict_proba(X)
        )

    def test_balanced_raises_minority_recall(self):
        X, y = _imbalanced_overlap()
        plain = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        balanced = DecisionTreeClassifier(
            max_depth=4, class_weight="balanced", seed=0
        ).fit(X, y)
        assert true_positive_rate(y, balanced.predict(X)) > true_positive_rate(
            y, plain.predict(X)
        )

    def test_dict_weights_shift_operating_point(self):
        X, y = _imbalanced_overlap()
        mild = DecisionTreeClassifier(
            max_depth=4, class_weight={0: 1.0, 1: 2.0}, seed=0
        ).fit(X, y)
        harsh = DecisionTreeClassifier(
            max_depth=4, class_weight={0: 1.0, 1: 50.0}, seed=0
        ).fit(X, y)
        # Heavier minority weight catches more positives at more FPs.
        assert true_positive_rate(y, harsh.predict(X)) >= true_positive_rate(
            y, mild.predict(X)
        )
        assert false_positive_rate(y, harsh.predict(X)) >= false_positive_rate(
            y, mild.predict(X)
        )

    def test_missing_label_in_dict_rejected(self):
        X, y = _imbalanced_overlap()
        tree = DecisionTreeClassifier(class_weight={0: 1.0})
        with pytest.raises(ValueError, match="missing label"):
            tree.fit(X, y)

    def test_nonpositive_weight_rejected(self):
        X, y = _imbalanced_overlap()
        tree = DecisionTreeClassifier(class_weight={0: 1.0, 1: 0.0})
        with pytest.raises(ValueError, match="positive"):
            tree.fit(X, y)

    def test_invalid_spec_rejected(self):
        X, y = _imbalanced_overlap()
        with pytest.raises(ValueError, match="invalid class_weight"):
            DecisionTreeClassifier(class_weight="heavy").fit(X, y)

    def test_leaf_probabilities_weighted(self):
        # One feature, one split; leaf probabilities must reflect the
        # weights, not the raw counts.
        X = np.array([[0.0], [0.0], [0.0], [1.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(
            max_depth=1, class_weight={0: 1.0, 1: 3.0}, seed=0
        ).fit(X, y)
        probabilities = tree.predict_proba(np.array([[0.0]]))[0]
        # Left leaf holds two 0s (mass 2) and one 1 (mass 3).
        np.testing.assert_allclose(probabilities, [2 / 5, 3 / 5])


class TestWeightedForest:
    def test_balanced_forest_raises_recall(self):
        X, y = _imbalanced_overlap()
        plain = RandomForestClassifier(n_estimators=15, max_depth=4, seed=0).fit(X, y)
        balanced = RandomForestClassifier(
            n_estimators=15, max_depth=4, class_weight="balanced", seed=0
        ).fit(X, y)
        assert true_positive_rate(y, balanced.predict(X)) >= true_positive_rate(
            y, plain.predict(X)
        )

    def test_clone_preserves_class_weight(self):
        from repro.ml.base import clone

        forest = RandomForestClassifier(class_weight={0: 1.0, 1: 9.0})
        assert clone(forest).class_weight == {0: 1.0, 1: 9.0}
