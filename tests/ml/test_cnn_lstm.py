"""Unit tests for the CNN_LSTM classifier."""

import numpy as np
import pytest

from repro.ml.nn.cnn_lstm import CNNLSTMClassifier


def _sequence_problem(n=120, time=6, features=3, seed=0):
    """Faulty sequences trend upward over time; healthy ones are flat."""
    generator = np.random.default_rng(seed)
    healthy = generator.normal(0, 0.5, (n, time, features))
    trend = np.linspace(0, 3, time)[None, :, None]
    faulty = generator.normal(0, 0.5, (n, time, features)) + trend
    X = np.concatenate([healthy, faulty])
    y = np.array([0] * n + [1] * n)
    order = generator.permutation(2 * n)
    return X[order], y[order]


class TestCNNLSTM:
    def test_learns_temporal_trend(self):
        X, y = _sequence_problem()
        model = CNNLSTMClassifier(
            time_steps=6, conv_channels=4, hidden_size=8, n_epochs=15, seed=0
        )
        model.fit(X, y)
        assert model.score(X, y) > 0.9

    def test_loss_history_decreases(self):
        X, y = _sequence_problem()
        model = CNNLSTMClassifier(
            time_steps=6, conv_channels=4, hidden_size=8, n_epochs=10, seed=0
        ).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_accepts_flattened_2d_input(self):
        X, y = _sequence_problem(n=60)
        flattened = X.reshape(X.shape[0], -1)
        model = CNNLSTMClassifier(
            time_steps=6, conv_channels=4, hidden_size=8, n_epochs=8, seed=0
        ).fit(flattened, y)
        probabilities = model.predict_proba(flattened)
        assert probabilities.shape == (flattened.shape[0], 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_indivisible_columns_rejected(self):
        X = np.ones((10, 13))
        y = np.array([0, 1] * 5)
        with pytest.raises(ValueError, match="divisible"):
            CNNLSTMClassifier(time_steps=6).fit(X, y)

    def test_multiclass_rejected(self):
        X = np.ones((9, 6, 1))
        y = np.array([0, 1, 2] * 3)
        with pytest.raises(ValueError, match="binary"):
            CNNLSTMClassifier(time_steps=6).fit(X, y)

    def test_deterministic_by_seed(self):
        X, y = _sequence_problem(n=40)
        make = lambda: CNNLSTMClassifier(
            time_steps=6, conv_channels=3, hidden_size=4, n_epochs=3, seed=9
        )
        a = make().fit(X, y).predict_proba(X)
        b = make().fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(a, b)

    def test_invalid_time_steps(self):
        with pytest.raises(ValueError):
            CNNLSTMClassifier(time_steps=0)

    def test_clone_compatible_params(self):
        from repro.ml.base import clone

        model = CNNLSTMClassifier(time_steps=4, hidden_size=16)
        copy = clone(model)
        assert copy.get_params() == model.get_params()
