"""Unit tests for LabelEncoder / StandardScaler / MinMaxScaler."""

import numpy as np
import pytest

from repro.ml.encoding import LabelEncoder, MinMaxScaler, StandardScaler


class TestLabelEncoder:
    def test_roundtrip(self):
        encoder = LabelEncoder()
        values = ["I_F_2", "I_F_1", "I_F_2", "I_F_3"]
        codes = encoder.fit_transform(values)
        assert encoder.inverse_transform(codes) == values

    def test_deterministic_sorted_classes(self):
        encoder = LabelEncoder().fit(["b", "a", "c", "a"])
        assert encoder.classes_ == ["a", "b", "c"]
        np.testing.assert_array_equal(encoder.transform(["a", "c"]), [0, 2])

    def test_unseen_label_raises(self):
        encoder = LabelEncoder().fit(["x"])
        with pytest.raises(ValueError, match="unseen label"):
            encoder.transform(["y"])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])
        with pytest.raises(RuntimeError):
            LabelEncoder().inverse_transform([0])

    def test_handles_mixed_firmware_styles(self):
        # Vendors name firmware with strings or numbers (Observation #2).
        encoder = LabelEncoder().fit(["2.1.7", "AGHO1012", "2.1.7", "301"])
        assert len(encoder.classes_) == 3


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, (500, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_array_equal(Z[:, 0], 0.0)
        assert np.all(np.isfinite(Z))

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(0, 2, (50, 3))
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_range_zero_one(self, rng):
        X = rng.uniform(-10, 30, (100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_constant_column_finite(self):
        X = np.full((5, 1), 7.0)
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))
