"""Unit tests for RandomForestClassifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


class TestRandomForest:
    def test_separable_blobs_high_accuracy(self, binary_blobs):
        X, y = binary_blobs
        model = RandomForestClassifier(n_estimators=15, max_depth=6, seed=0).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_n_estimators_trees_grown(self, binary_blobs):
        X, y = binary_blobs
        model = RandomForestClassifier(n_estimators=7, max_depth=3).fit(X, y)
        assert len(model.trees_) == 7

    def test_probabilities_are_tree_averages(self, binary_blobs):
        X, y = binary_blobs
        model = RandomForestClassifier(n_estimators=5, max_depth=4, seed=1).fit(X, y)
        manual = np.mean([tree.predict_proba(X[:10]) for tree in model.trees_], axis=0)
        np.testing.assert_allclose(model.predict_proba(X[:10]), manual)

    def test_deterministic_by_seed(self, binary_blobs):
        X, y = binary_blobs
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, binary_blobs):
        X, y = binary_blobs
        a = RandomForestClassifier(n_estimators=5, seed=1).fit(X, y).predict_proba(X)
        b = RandomForestClassifier(n_estimators=5, seed=2).fit(X, y).predict_proba(X)
        assert not np.array_equal(a, b)

    def test_no_bootstrap_uses_all_rows(self, binary_blobs):
        X, y = binary_blobs
        model = RandomForestClassifier(
            n_estimators=3, bootstrap=False, max_features=None, seed=0
        ).fit(X, y)
        # Without bootstrap or feature subsampling all trees are
        # identical, so the ensemble equals a single tree.
        first = model.trees_[0].predict_proba(X)
        np.testing.assert_allclose(model.predict_proba(X), first)

    def test_feature_importances_shape_and_sum(self, binary_blobs):
        X, y = binary_blobs
        model = RandomForestClassifier(n_estimators=10, max_depth=4, seed=0).fit(X, y)
        assert model.feature_importances_.shape == (X.shape[1],)
        assert model.feature_importances_.sum() == pytest.approx(1.0, abs=1e-6)

    def test_handles_class_missing_from_bootstrap(self):
        # With 2 samples of one class and aggressive bootstrap, some
        # trees may never see the minority class; alignment must hold.
        generator = np.random.default_rng(0)
        X = np.vstack([generator.normal(0, 1, (50, 2)), generator.normal(5, 1, (2, 2))])
        y = np.array([0] * 50 + [1] * 2)
        model = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        probabilities = model.predict_proba(X)
        assert probabilities.shape == (52, 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_single_class_tree_alignment_precomputed(self):
        """Regression for the fit-time column-alignment precompute.

        Force a tree that saw only the majority class in its bootstrap
        and check its one probability column maps onto the right forest
        column — and that the mapping was built once at fit time.
        """
        generator = np.random.default_rng(0)
        X = np.vstack([generator.normal(0, 1, (60, 2)), generator.normal(6, 1, (1, 2))])
        y = np.array([0] * 60 + [1])
        model = RandomForestClassifier(n_estimators=25, seed=0).fit(X, y)
        single_class = [
            i for i, tree in enumerate(model.trees_) if tree.classes_.size == 1
        ]
        assert single_class, "expected at least one bootstrap without the rare class"
        for i in single_class:
            assert model.trees_[i].classes_[0] == 0
            np.testing.assert_array_equal(model._tree_columns_[i], [0])
        probabilities = model.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        # Single-class trees vote all their mass on class 0, so the far
        # positive sample cannot reach probability 1.
        assert probabilities[-1, 1] < 1.0

    def test_alignment_rebuilt_for_legacy_pickles(self, binary_blobs):
        """Models unpickled from pre-precompute checkpoints still align."""
        X, y = binary_blobs
        model = RandomForestClassifier(n_estimators=5, max_depth=3, seed=0).fit(X, y)
        expected = model.predict_proba(X[:20])
        del model._tree_columns_
        np.testing.assert_array_equal(model.predict_proba(X[:20]), expected)
        assert hasattr(model, "_tree_columns_")

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_ensemble_beats_single_tree_on_noise(self):
        generator = np.random.default_rng(7)
        n = 400
        X = generator.normal(0, 1, (n, 10))
        y = (X[:, 0] + X[:, 1] + generator.normal(0, 0.8, n) > 0).astype(int)
        split = 300
        tree_like = RandomForestClassifier(n_estimators=1, max_depth=None, seed=0)
        forest = RandomForestClassifier(n_estimators=40, max_depth=None, seed=0)
        tree_score = tree_like.fit(X[:split], y[:split]).score(X[split:], y[split:])
        forest_score = forest.fit(X[:split], y[:split]).score(X[split:], y[split:])
        assert forest_score >= tree_score
