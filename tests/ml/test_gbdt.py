"""Unit tests for GradientBoostingClassifier."""

import numpy as np
import pytest

from repro.ml.gbdt import GradientBoostingClassifier


class TestGBDT:
    def test_separable_blobs_high_accuracy(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=30, seed=0).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_training_deviance_decreases(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=40, seed=0).fit(X, y)
        deviance = model.train_deviance_
        assert deviance[-1] < deviance[0]
        # Deviance should be mostly monotone decreasing.
        decreases = sum(b <= a for a, b in zip(deviance, deviance[1:]))
        assert decreases >= 0.9 * (len(deviance) - 1)

    def test_initial_score_is_log_odds(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([1] * 25 + [0] * 75)
        model = GradientBoostingClassifier(n_estimators=1).fit(X, y)
        assert model.initial_score_ == pytest.approx(np.log(25 / 75))

    def test_more_rounds_fit_tighter(self, binary_blobs):
        X, y = binary_blobs
        few = GradientBoostingClassifier(n_estimators=5, seed=0).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=60, seed=0).fit(X, y)
        assert many.train_deviance_[-1] < few.train_deviance_[-1]

    def test_learning_rate_zero_point_one_vs_one(self, binary_blobs):
        X, y = binary_blobs
        slow = GradientBoostingClassifier(n_estimators=10, learning_rate=0.05, seed=0)
        fast = GradientBoostingClassifier(n_estimators=10, learning_rate=0.5, seed=0)
        slow.fit(X, y)
        fast.fit(X, y)
        assert fast.train_deviance_[-1] < slow.train_deviance_[-1]

    def test_subsample_still_learns(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=30, subsample=0.5, seed=0)
        assert model.fit(X, y).score(X, y) > 0.9

    def test_decision_function_matches_proba(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=10, seed=0).fit(X, y)
        raw = model.decision_function(X[:5])
        proba = model.predict_proba(X[:5])[:, 1]
        np.testing.assert_allclose(proba, 1 / (1 + np.exp(-raw)))

    def test_multiclass_rejected(self):
        X = np.arange(9, dtype=float).reshape(-1, 1)
        y = np.array([0, 1, 2] * 3)
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier().fit(X, y)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=1.5)

    def test_deterministic_by_seed(self, binary_blobs):
        X, y = binary_blobs
        a = GradientBoostingClassifier(n_estimators=8, subsample=0.7, seed=4).fit(X, y)
        b = GradientBoostingClassifier(n_estimators=8, subsample=0.7, seed=4).fit(X, y)
        np.testing.assert_array_equal(a.predict_proba(X), b.predict_proba(X))
