"""Unit tests for GradientBoostingClassifier."""

import numpy as np
import pytest

from repro.ml.gbdt import GradientBoostingClassifier


class TestGBDT:
    def test_separable_blobs_high_accuracy(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=30, seed=0).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_training_deviance_decreases(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=40, seed=0).fit(X, y)
        deviance = model.train_deviance_
        assert deviance[-1] < deviance[0]
        # Deviance should be mostly monotone decreasing.
        decreases = sum(b <= a for a, b in zip(deviance, deviance[1:]))
        assert decreases >= 0.9 * (len(deviance) - 1)

    def test_initial_score_is_log_odds(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([1] * 25 + [0] * 75)
        model = GradientBoostingClassifier(n_estimators=1).fit(X, y)
        assert model.initial_score_ == pytest.approx(np.log(25 / 75))

    def test_more_rounds_fit_tighter(self, binary_blobs):
        X, y = binary_blobs
        few = GradientBoostingClassifier(n_estimators=5, seed=0).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=60, seed=0).fit(X, y)
        assert many.train_deviance_[-1] < few.train_deviance_[-1]

    def test_learning_rate_zero_point_one_vs_one(self, binary_blobs):
        X, y = binary_blobs
        slow = GradientBoostingClassifier(n_estimators=10, learning_rate=0.05, seed=0)
        fast = GradientBoostingClassifier(n_estimators=10, learning_rate=0.5, seed=0)
        slow.fit(X, y)
        fast.fit(X, y)
        assert fast.train_deviance_[-1] < slow.train_deviance_[-1]

    def test_subsample_still_learns(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=30, subsample=0.5, seed=0)
        assert model.fit(X, y).score(X, y) > 0.9

    def test_decision_function_matches_proba(self, binary_blobs):
        X, y = binary_blobs
        model = GradientBoostingClassifier(n_estimators=10, seed=0).fit(X, y)
        raw = model.decision_function(X[:5])
        proba = model.predict_proba(X[:5])[:, 1]
        np.testing.assert_allclose(proba, 1 / (1 + np.exp(-raw)))

    def test_multiclass_rejected(self):
        X = np.arange(9, dtype=float).reshape(-1, 1)
        y = np.array([0, 1, 2] * 3)
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier().fit(X, y)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=1.5)

    def test_single_sigmoid_per_round_matches_reference(self, binary_blobs):
        """The carried-over sigmoid must be bit-identical to the old
        compute-twice-per-round loop (residuals from sigmoid(raw_t),
        deviance from sigmoid(raw_{t+1}))."""
        from repro.ml.gbdt import _sigmoid
        from repro.ml.tree import DecisionTreeRegressor

        X, y = binary_blobs
        model = GradientBoostingClassifier(
            n_estimators=12, subsample=0.8, max_depth=2, seed=5
        ).fit(X, y)

        # Reference: the naive loop recomputing the sigmoid twice.
        targets = (y == model.classes_[1]).astype(float)
        raw = np.full(X.shape[0], model.initial_score_)
        rng = np.random.default_rng(5)
        n_samples = X.shape[0]
        subsample_size = max(1, int(round(0.8 * n_samples)))
        deviances = []
        for _ in range(12):
            probabilities = _sigmoid(raw)
            residuals = targets - probabilities
            rows = rng.choice(n_samples, size=subsample_size, replace=False)
            tree = DecisionTreeRegressor(
                max_depth=2, min_samples_leaf=1, seed=int(rng.integers(0, 2**31 - 1))
            )
            tree.fit(X[rows], residuals[rows])
            raw += 0.1 * tree.predict(X)
            clipped = np.clip(_sigmoid(raw), 1e-12, 1 - 1e-12)
            deviances.append(
                float(
                    -np.mean(
                        targets * np.log(clipped)
                        + (1 - targets) * np.log(1 - clipped)
                    )
                )
            )
        np.testing.assert_array_equal(model.train_deviance_, deviances)
        np.testing.assert_array_equal(
            model.predict_proba(X)[:, 1],
            _sigmoid(model.decision_function(X)),
        )
        np.testing.assert_allclose(model.decision_function(X), raw, atol=1e-12)

    def test_deterministic_by_seed(self, binary_blobs):
        X, y = binary_blobs
        a = GradientBoostingClassifier(n_estimators=8, subsample=0.7, seed=4).fit(X, y)
        b = GradientBoostingClassifier(n_estimators=8, subsample=0.7, seed=4).fit(X, y)
        np.testing.assert_array_equal(a.predict_proba(X), b.predict_proba(X))
