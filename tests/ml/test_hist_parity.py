"""Exact-vs-hist split-backend parity.

Three layers of guarantee are pinned here:

1. **Lossless parity** — when every feature has few distinct values the
   quantile binning is lossless (midpoint edges), and the hist backend
   must grow *identical* trees to the exact backend: same structure,
   same thresholds, same leaf values. GBDT is the one exception — its
   regression targets are continuous residuals, so float summation
   order can flip a near-tied split; there the guarantee is agreement,
   not identity.
2. **Statistical parity** — on the Table-V SFWB workload the backends
   agree within 0.5 pt TPR/FPR at every ``n_jobs``.
3. **Binning amortization** — a grid search builds the BinnedDataset
   once per CV fold; every (candidate, fold) fit is a cache hit.
"""

import time

import numpy as np
import pytest

from repro.core.pipeline import MFPA, MFPAConfig
from repro.ml.binning import clear_binned_cache
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.model_selection import GridSearchCV, KFold
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.obs import get_registry
from repro.parallel import fork_available


@pytest.fixture(autouse=True)
def clean_cache():
    clear_binned_cache()
    yield
    clear_binned_cache()


def _counter(name: str) -> float:
    return get_registry().counter(name).value


def _small_int_problem(seed: int, n: int = 300, n_features: int = 5):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 8, (n, n_features)).astype(float)
    y = ((X[:, 0] + X[:, 2] > 7) ^ (rng.random(n) < 0.1)).astype(int)
    return X, y


def _assert_same_tree(a, b):
    np.testing.assert_array_equal(a.feature, b.feature)
    np.testing.assert_array_equal(a.threshold, b.threshold)
    np.testing.assert_array_equal(a.value, b.value)


class TestLosslessParity:
    """Small-integer features -> identical trees, seed by seed."""

    @pytest.mark.parametrize("seed", range(8))
    def test_classifier_trees_identical(self, seed):
        X, y = _small_int_problem(seed)
        exact = DecisionTreeClassifier(max_depth=6, seed=seed).fit(X, y)
        hist = DecisionTreeClassifier(
            max_depth=6, split_algorithm="hist", seed=seed
        ).fit(X, y)
        _assert_same_tree(exact.tree_, hist.tree_)
        np.testing.assert_array_equal(
            exact.feature_importances_, hist.feature_importances_
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_regressor_trees_identical(self, seed):
        X, _ = _small_int_problem(seed)
        y = X[:, 1] * 2 + X[:, 3]
        exact = DecisionTreeRegressor(max_depth=5, seed=seed).fit(X, y)
        hist = DecisionTreeRegressor(
            max_depth=5, split_algorithm="hist", seed=seed
        ).fit(X, y)
        _assert_same_tree(exact.tree_, hist.tree_)

    @pytest.mark.parametrize("seed", range(4))
    def test_feature_subsampled_trees_identical(self, seed):
        # max_features < n_features disables the subtraction trick;
        # the per-node histogram path must still match exactly.
        X, y = _small_int_problem(seed)
        exact = DecisionTreeClassifier(
            max_depth=6, max_features="sqrt", seed=seed
        ).fit(X, y)
        hist = DecisionTreeClassifier(
            max_depth=6, max_features="sqrt", split_algorithm="hist", seed=seed
        ).fit(X, y)
        _assert_same_tree(exact.tree_, hist.tree_)

    @pytest.mark.parametrize("seed", range(4))
    def test_class_weighted_trees_agree(self, seed):
        # Weighted class masses are floats the two backends accumulate
        # in different orders, so (like GBDT residuals) a near-tied
        # split may flip; the pin is agreement, not bit-identity.
        X, y = _small_int_problem(seed)
        exact = DecisionTreeClassifier(
            max_depth=6, class_weight="balanced", seed=seed
        ).fit(X, y)
        hist = DecisionTreeClassifier(
            max_depth=6, class_weight="balanced", split_algorithm="hist", seed=seed
        ).fit(X, y)
        assert (exact.predict(X) == hist.predict(X)).mean() >= 0.99

    @pytest.mark.parametrize("seed", range(4))
    def test_forest_identical(self, seed):
        X, y = _small_int_problem(seed)
        exact = RandomForestClassifier(
            n_estimators=8, max_depth=5, seed=seed
        ).fit(X, y)
        hist = RandomForestClassifier(
            n_estimators=8, max_depth=5, split_algorithm="hist", seed=seed
        ).fit(X, y)
        np.testing.assert_array_equal(
            exact.predict_proba(X), hist.predict_proba(X)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_gbdt_agrees(self, seed):
        # GBDT fits trees to continuous residuals, where the two
        # backends sum gains in different float orders; identity can
        # flip on a near-tie, so the pin is agreement, not bit-equality.
        X, y = _small_int_problem(seed)
        exact = GradientBoostingClassifier(n_estimators=20, seed=seed).fit(X, y)
        hist = GradientBoostingClassifier(
            n_estimators=20, split_algorithm="hist", seed=seed
        ).fit(X, y)
        np.testing.assert_allclose(
            exact.predict_proba(X), hist.predict_proba(X), atol=0.02
        )
        assert (exact.predict(X) == hist.predict(X)).mean() >= 0.99

    def test_unweighted_binary_matches_general_path(self):
        # Three-class input forces the general (n_classes-dim) histogram
        # layout; collapsing a class back to binary must route through
        # the lean two-class path and still grow the identical tree.
        X, _ = _small_int_problem(0)
        rng = np.random.default_rng(0)
        y3 = rng.integers(0, 3, X.shape[0])
        exact = DecisionTreeClassifier(max_depth=5).fit(X, y3)
        hist = DecisionTreeClassifier(max_depth=5, split_algorithm="hist").fit(X, y3)
        _assert_same_tree(exact.tree_, hist.tree_)


class TestTableVTolerance:
    """Exact and hist agree on the Table-V SFWB workload at n_jobs 1 / 4.

    The tier-1 fleet has only ~11 faulty eval drives, so a single
    borderline drive moves drive-level TPR by ~9 pt — the paper-scale
    |dTPR|, |dFPR| <= 0.5 pt pin therefore runs on the (much larger)
    ``make bench-hist`` workload, while this test asserts agreement to
    the finest resolution this fleet supports: within one sample
    quantum on both the drive- and record-level reports.
    """

    @pytest.fixture(scope="class")
    def reports(self, small_fleet):
        def train(split_algorithm, n_jobs):
            model = MFPA(
                MFPAConfig(
                    feature_group_name="SFWB",
                    split_algorithm=split_algorithm,
                    n_jobs=n_jobs,
                )
            )
            model.fit(small_fleet, train_end_day=240)
            result = model.evaluate(240, 360)
            return result.drive_report, result.record_report

        out = {("exact", 1): train("exact", 1), ("hist", 1): train("hist", 1)}
        if fork_available():
            out[("hist", 4)] = train("hist", 4)
        return out

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_drive_level_tpr_fpr_agree(self, reports, n_jobs):
        if ("hist", n_jobs) not in reports:
            pytest.skip("parallel path requires fork")
        exact, hist = reports[("exact", 1)][0], reports[("hist", n_jobs)][0]
        tpr_quantum = 1.0 / max(exact.tp + exact.fn, 1)
        fpr_quantum = 1.0 / max(exact.fp + exact.tn, 1)
        assert abs(exact.tpr - hist.tpr) <= max(0.005, tpr_quantum) + 1e-9
        assert abs(exact.fpr - hist.fpr) <= max(0.005, fpr_quantum) + 1e-9

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_record_level_ranking_agrees(self, reports, n_jobs):
        # Record-level TPR/FPR at a fixed 0.5 threshold count borderline
        # record-days, which legitimately shift with quantile
        # thresholds; the threshold-free AUC pins that the backends rank
        # records the same, with a loose band on the thresholded rates.
        if ("hist", n_jobs) not in reports:
            pytest.skip("parallel path requires fork")
        exact, hist = reports[("exact", 1)][1], reports[("hist", n_jobs)][1]
        assert abs(exact.auc - hist.auc) <= 0.005
        assert abs(exact.tpr - hist.tpr) <= 0.05
        assert abs(exact.fpr - hist.fpr) <= 0.05

    def test_hist_deterministic_across_n_jobs(self, reports):
        if ("hist", 4) not in reports:
            pytest.skip("parallel path requires fork")
        for serial, parallel in zip(reports[("hist", 1)], reports[("hist", 4)]):
            assert serial.tpr == parallel.tpr
            assert serial.fpr == parallel.fpr
            assert serial.auc == parallel.auc


class TestGridSearchBinning:
    """The acceptance pin: one BinnedDataset build per fold per search."""

    def test_one_build_per_fold(self, binary_blobs):
        X, y = binary_blobs
        grid = {"max_depth": [3, 5, 7], "min_samples_leaf": [1, 4]}
        n_folds = 3
        hits0 = _counter("tree_bin_cache_hits_total")
        misses0 = _counter("tree_bin_cache_misses_total")
        search = GridSearchCV(
            DecisionTreeClassifier(split_algorithm="hist", seed=0),
            grid,
            splitter=KFold(n_splits=n_folds, seed=0),
            refit=False,
            n_jobs=1,
        ).fit(X, y)
        n_candidates = len(search.results_)
        assert n_candidates == 6
        misses = _counter("tree_bin_cache_misses_total") - misses0
        hits = _counter("tree_bin_cache_hits_total") - hits0
        # The prewarm pays one miss per fold; every (candidate, fold)
        # fit afterwards is a hit.
        assert misses == n_folds
        assert hits >= n_candidates * n_folds

    def test_exact_search_never_bins(self, binary_blobs):
        X, y = binary_blobs
        misses0 = _counter("tree_bin_cache_misses_total")
        GridSearchCV(
            DecisionTreeClassifier(seed=0),
            {"max_depth": [3, 5]},
            splitter=KFold(n_splits=3, seed=0),
            refit=False,
        ).fit(X, y)
        assert _counter("tree_bin_cache_misses_total") == misses0


@pytest.mark.smoke
def test_hist_not_slower_than_exact_on_smoke_workload():
    """`make smoke` gate: hist must at least break even on a workload
    big enough for the asymptotics to show (continuous features, deep
    trees)."""
    rng = np.random.default_rng(0)
    X = rng.normal(0, 1, (4000, 12))
    y = (X[:, 0] + 0.5 * X[:, 3] - X[:, 7] + rng.normal(0, 0.7, 4000) > 0).astype(int)

    def fit_seconds(split_algorithm):
        clear_binned_cache()
        forest = RandomForestClassifier(
            n_estimators=6, max_depth=None, split_algorithm=split_algorithm, seed=0
        )
        started = time.perf_counter()
        forest.fit(X, y)
        return time.perf_counter() - started

    fit_seconds("exact")  # warm numpy/BLAS paths before timing
    exact_seconds = fit_seconds("exact")
    hist_seconds = fit_seconds("hist")
    assert hist_seconds <= exact_seconds * 1.05, (
        f"hist backend slower than exact on the smoke workload: "
        f"{hist_seconds:.3f}s vs {exact_seconds:.3f}s"
    )
