"""Unit tests for the isolation forest anomaly scorer."""

import numpy as np
import pytest

from repro.ml.isolation_forest import IsolationForest, _average_path_length


class TestAveragePathLength:
    def test_known_values(self):
        # c(2) = 2*H(1) - 2*(1/2) = 2*gamma ... closed form check.
        result = _average_path_length(np.array([2]))[0]
        expected = 2 * (np.log(1) + np.euler_gamma) - 2 * 1 / 2
        assert result == pytest.approx(expected)

    def test_monotone_in_n(self):
        values = _average_path_length(np.array([2, 10, 100, 1000]))
        assert np.all(np.diff(values) > 0)

    def test_degenerate_sizes(self):
        np.testing.assert_array_equal(_average_path_length(np.array([0, 1])), [0, 0])


class TestIsolationForest:
    @pytest.fixture(scope="class")
    def data(self):
        generator = np.random.default_rng(0)
        inliers = generator.normal(0, 1, (500, 4))
        outliers = generator.uniform(-8, 8, (25, 4))
        outliers = outliers[np.linalg.norm(outliers, axis=1) > 5][:15]
        return inliers, outliers

    def test_outliers_score_higher(self, data):
        inliers, outliers = data
        forest = IsolationForest(n_estimators=50, seed=0).fit(inliers)
        inlier_scores = forest.anomaly_score(inliers)
        outlier_scores = forest.anomaly_score(outliers)
        assert np.median(outlier_scores) > np.median(inlier_scores)

    def test_scores_in_unit_interval(self, data):
        inliers, _ = data
        forest = IsolationForest(n_estimators=30, seed=1).fit(inliers)
        scores = forest.anomaly_score(inliers)
        assert np.all(scores > 0)
        assert np.all(scores <= 1)

    def test_contamination_sets_flag_rate(self, data):
        inliers, _ = data
        forest = IsolationForest(
            n_estimators=50, contamination=0.1, seed=2
        ).fit(inliers)
        flagged = forest.predict(inliers)
        rate = np.mean(flagged == forest.classes_[1])
        assert rate == pytest.approx(0.1, abs=0.05)

    def test_predict_proba_shape(self, data):
        inliers, _ = data
        forest = IsolationForest(n_estimators=20, seed=3).fit(inliers)
        probabilities = forest.predict_proba(inliers[:10])
        assert probabilities.shape == (10, 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_unsupervised_fit_without_labels(self, data):
        inliers, _ = data
        forest = IsolationForest(n_estimators=10, seed=4).fit(inliers)
        assert forest.classes_.shape == (2,)

    def test_deterministic_by_seed(self, data):
        inliers, _ = data
        a = IsolationForest(n_estimators=10, seed=5).fit(inliers).anomaly_score(inliers)
        b = IsolationForest(n_estimators=10, seed=5).fit(inliers).anomaly_score(inliers)
        np.testing.assert_array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IsolationForest(n_estimators=0)
        with pytest.raises(ValueError):
            IsolationForest(max_samples=1)
        with pytest.raises(ValueError):
            IsolationForest(contamination=0.7)

    def test_detects_degraded_drives_without_labels(self, small_fleet):
        """The storage use case: anomaly scores separate pre-failure
        records from healthy ones with no labels at all."""
        from repro.core.labeling import FailureTimeIdentifier, build_samples
        from repro.core.preprocess import preprocess
        from repro.core.features import FeatureAssembler, feature_group
        from repro.ml.metrics import auc_score

        prepared, _, _ = preprocess(small_fleet)
        failure_times = FailureTimeIdentifier().identify(prepared)
        samples = build_samples(prepared, failure_times, positive_window=14)
        assembler = FeatureAssembler(feature_group("SFWB").columns)
        X = assembler.assemble(prepared.columns, samples.row_indices)
        forest = IsolationForest(n_estimators=60, seed=0).fit(X)
        scores = forest.anomaly_score(X)
        assert auc_score(samples.labels, scores) > 0.6
