"""Unit tests for LogisticRegression and VotingClassifier."""

import numpy as np
import pytest

from repro.ml.ensemble import VotingClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier


class TestLogisticRegression:
    def test_separable_blobs_high_accuracy(self, binary_blobs):
        X, y = binary_blobs
        model = LogisticRegression(n_iterations=200).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_loss_decreases(self, binary_blobs):
        X, y = binary_blobs
        model = LogisticRegression(n_iterations=100).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_probabilities_valid(self, binary_blobs):
        X, y = binary_blobs
        probabilities = LogisticRegression(n_iterations=50).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_regularization_shrinks_weights(self, binary_blobs):
        X, y = binary_blobs
        loose = LogisticRegression(C=100.0, n_iterations=200).fit(X, y)
        tight = LogisticRegression(C=0.001, n_iterations=200).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_balanced_weights_raise_minority_recall(self):
        generator = np.random.default_rng(0)
        X = np.vstack(
            [generator.normal(0, 1, (500, 3)), generator.normal(1.0, 1, (30, 3))]
        )
        y = np.array([0] * 500 + [1] * 30)
        from repro.ml.metrics import true_positive_rate

        plain = LogisticRegression(n_iterations=200).fit(X, y)
        balanced = LogisticRegression(n_iterations=200, class_weight="balanced").fit(X, y)
        assert true_positive_rate(y, balanced.predict(X)) >= true_positive_rate(
            y, plain.predict(X)
        )

    def test_dict_class_weight_validation(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError, match="missing label"):
            LogisticRegression(class_weight={0: 1.0}).fit(X, y)
        with pytest.raises(ValueError, match="invalid class_weight"):
            LogisticRegression(class_weight="heavy").fit(X, y)

    def test_multiclass_rejected(self):
        X = np.arange(9, dtype=float).reshape(-1, 1)
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(X, np.array([0, 1, 2] * 3))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0)
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(momentum=1.0)


class TestVotingClassifier:
    def _members(self):
        return [
            ("nb", GaussianNaiveBayes()),
            ("tree", DecisionTreeClassifier(max_depth=4, seed=0)),
            ("logit", LogisticRegression(n_iterations=100)),
        ]

    def test_vote_is_weighted_average(self, binary_blobs):
        X, y = binary_blobs
        voting = VotingClassifier(self._members()).fit(X, y)
        members = voting.member_probabilities(X[:20])
        manual = np.mean(list(members.values()), axis=0)
        np.testing.assert_allclose(voting.predict_proba(X[:20])[:, 1], manual)

    def test_custom_weights_respected(self, binary_blobs):
        X, y = binary_blobs
        voting = VotingClassifier(self._members(), weights=[1.0, 0.0, 0.0]).fit(X, y)
        solo = GaussianNaiveBayes().fit(X, y)
        np.testing.assert_allclose(
            voting.predict_proba(X[:10]), solo.predict_proba(X[:10]), atol=1e-12
        )

    def test_ensemble_competitive_with_members(self, binary_blobs):
        X, y = binary_blobs
        voting = VotingClassifier(self._members()).fit(X, y)
        member_scores = [
            member.score(X, y) for member in voting.fitted_.values()
        ]
        assert voting.score(X, y) >= min(member_scores)

    def test_prototypes_not_mutated(self, binary_blobs):
        X, y = binary_blobs
        members = self._members()
        VotingClassifier(members).fit(X, y)
        for _, prototype in members:
            assert not hasattr(prototype, "classes_")

    def test_validation(self):
        with pytest.raises(ValueError, match="not be empty"):
            VotingClassifier([])
        with pytest.raises(ValueError, match="unique"):
            VotingClassifier([("a", GaussianNaiveBayes()), ("a", GaussianNaiveBayes())])
        with pytest.raises(ValueError, match="match"):
            VotingClassifier([("a", GaussianNaiveBayes())], weights=[1.0, 2.0])
        with pytest.raises(ValueError, match="non-negative"):
            VotingClassifier([("a", GaussianNaiveBayes())], weights=[-1.0])
