"""Unit tests for the plain LSTM classifier."""

import numpy as np
import pytest

from repro.ml.nn.lstm_classifier import LSTMClassifier


def _sequence_problem(n=100, time=6, features=3, seed=0):
    generator = np.random.default_rng(seed)
    healthy = generator.normal(0, 0.5, (n, time, features))
    trend = np.linspace(0, 3, time)[None, :, None]
    faulty = generator.normal(0, 0.5, (n, time, features)) + trend
    X = np.concatenate([healthy, faulty])
    y = np.array([0] * n + [1] * n)
    order = generator.permutation(2 * n)
    return X[order], y[order]


class TestLSTMClassifier:
    def test_learns_temporal_trend(self):
        X, y = _sequence_problem()
        model = LSTMClassifier(time_steps=6, hidden_size=8, n_epochs=15, seed=0)
        model.fit(X, y)
        assert model.score(X, y) > 0.9

    def test_loss_decreases(self):
        X, y = _sequence_problem()
        model = LSTMClassifier(time_steps=6, hidden_size=8, n_epochs=10, seed=0).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_accepts_2d_input(self):
        X, y = _sequence_problem(n=50)
        flat = X.reshape(X.shape[0], -1)
        model = LSTMClassifier(time_steps=6, hidden_size=8, n_epochs=5, seed=0).fit(flat, y)
        probabilities = model.predict_proba(flat)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_indivisible_columns_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            LSTMClassifier(time_steps=5).fit(np.ones((8, 7)), np.array([0, 1] * 4))

    def test_multiclass_rejected(self):
        X = np.ones((9, 6, 1))
        with pytest.raises(ValueError, match="binary"):
            LSTMClassifier(time_steps=6).fit(X, np.array([0, 1, 2] * 3))

    def test_deterministic_by_seed(self):
        X, y = _sequence_problem(n=30)
        make = lambda: LSTMClassifier(time_steps=6, hidden_size=4, n_epochs=3, seed=2)
        a = make().fit(X, y).predict_proba(X)
        b = make().fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(a, b)

    def test_cloneable(self):
        from repro.ml.base import clone

        model = LSTMClassifier(time_steps=4, hidden_size=16)
        assert clone(model).get_params() == model.get_params()

    def test_invalid_time_steps(self):
        with pytest.raises(ValueError):
            LSTMClassifier(time_steps=0)
