"""Unit tests for the classification metrics (ACC/TPR/FPR/PDR/AUC)."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    auc_score,
    classification_report,
    confusion_matrix,
    f1_score,
    false_positive_rate,
    positive_detection_rate,
    precision,
    roc_curve,
    true_positive_rate,
)


class TestConfusionMatrix:
    def test_all_four_cells(self):
        y_true = np.array([1, 1, 0, 0, 1, 0])
        y_pred = np.array([1, 0, 1, 0, 1, 0])
        assert confusion_matrix(y_true, y_pred) == (2, 1, 1, 2)

    def test_perfect_prediction(self):
        y = np.array([0, 1, 0, 1])
        assert confusion_matrix(y, y) == (2, 0, 0, 2)

    def test_all_wrong(self):
        y_true = np.array([0, 1])
        y_pred = np.array([1, 0])
        assert confusion_matrix(y_true, y_pred) == (0, 1, 1, 0)

    def test_custom_positive_label(self):
        y_true = np.array([2, 2, 5])
        y_pred = np.array([2, 5, 5])
        tp, fp, fn, tn = confusion_matrix(y_true, y_pred, positive_label=5)
        assert (tp, fp, fn, tn) == (1, 1, 0, 1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="different shapes"):
            confusion_matrix(np.array([1, 0]), np.array([1]))


class TestRates:
    def test_tpr_known_value(self):
        y_true = np.array([1, 1, 1, 1, 0])
        y_pred = np.array([1, 1, 1, 0, 0])
        assert true_positive_rate(y_true, y_pred) == pytest.approx(0.75)

    def test_fpr_known_value(self):
        y_true = np.array([0, 0, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 0, 1])
        assert false_positive_rate(y_true, y_pred) == pytest.approx(0.25)

    def test_tpr_nan_without_positives(self):
        assert np.isnan(true_positive_rate(np.zeros(4), np.zeros(4)))

    def test_fpr_nan_without_negatives(self):
        assert np.isnan(false_positive_rate(np.ones(4), np.ones(4)))

    def test_pdr_counts_all_flagged(self):
        y_true = np.array([1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 0])
        assert positive_detection_rate(y_true, y_pred) == pytest.approx(0.5)

    def test_pdr_zero_samples_raises(self):
        with pytest.raises(ValueError):
            positive_detection_rate(np.array([]), np.array([]))

    def test_accuracy(self):
        y_true = np.array([1, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 0])
        assert accuracy(y_true, y_pred) == pytest.approx(0.75)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_precision_and_f1(self):
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.array([1, 0, 1, 0])
        assert precision(y_true, y_pred) == pytest.approx(0.5)
        assert f1_score(y_true, y_pred) == pytest.approx(0.5)

    def test_precision_nan_when_nothing_flagged(self):
        assert np.isnan(precision(np.array([1, 0]), np.array([0, 0])))


class TestRoc:
    def test_perfect_separation_auc_one(self):
        y_true = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(y_true, scores) == pytest.approx(1.0)

    def test_reversed_scores_auc_zero(self):
        y_true = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y_true, scores) == pytest.approx(0.0)

    def test_random_scores_auc_half(self):
        generator = np.random.default_rng(3)
        y_true = generator.integers(0, 2, 5000)
        scores = generator.random(5000)
        assert auc_score(y_true, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_starts_at_origin_and_ends_at_one(self):
        y_true = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.3, 0.6, 0.1, 0.9, 0.5])
        fpr, tpr, thresholds = roc_curve(y_true, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_curve_monotone(self):
        generator = np.random.default_rng(9)
        y_true = generator.integers(0, 2, 200)
        scores = generator.random(200)
        fpr, tpr, _ = roc_curve(y_true, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_tied_scores_share_a_point(self):
        y_true = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        fpr, tpr, _ = roc_curve(y_true, scores)
        # Only the origin and the all-flagged point.
        assert fpr.shape == (2,)
        assert auc_score(y_true, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            roc_curve(np.ones(4), np.linspace(0, 1, 4))


class TestClassificationReport:
    def test_bundle_consistency(self):
        y_true = np.array([1, 1, 0, 0, 0, 0])
        y_pred = np.array([1, 0, 1, 0, 0, 0])
        scores = np.array([0.9, 0.4, 0.6, 0.2, 0.1, 0.3])
        report = classification_report(y_true, y_pred, scores)
        assert report.tp == 1 and report.fn == 1 and report.fp == 1 and report.tn == 3
        assert report.n_samples == 6
        assert report.accuracy == pytest.approx(4 / 6)
        assert report.tpr == pytest.approx(0.5)
        assert report.fpr == pytest.approx(0.25)
        assert report.pdr == pytest.approx(2 / 6)
        assert 0.0 <= report.auc <= 1.0

    def test_without_scores_uses_predictions(self):
        y_true = np.array([1, 0, 1, 0])
        y_pred = np.array([1, 0, 1, 0])
        report = classification_report(y_true, y_pred)
        assert report.auc == pytest.approx(1.0)

    def test_as_dict_and_str(self):
        y = np.array([1, 0])
        report = classification_report(y, y)
        assert set(report.as_dict()) == {"ACC", "TPR", "FPR", "PDR", "AUC"}
        assert "TPR=" in str(report)

    def test_degenerate_single_class_auc_nan(self):
        y = np.ones(3, dtype=int)
        report = classification_report(y, y, np.array([0.5, 0.6, 0.7]))
        assert np.isnan(report.auc)
