"""Unit tests for ParameterGrid, KFold, cross_val_score and GridSearchCV."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy
from repro.ml.model_selection import GridSearchCV, KFold, ParameterGrid, cross_val_score
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == 6 == len(grid)
        assert {"a": 1, "b": "z"} in combos

    def test_single_parameter(self):
        assert list(ParameterGrid({"depth": [3]})) == [{"depth": 3}]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({})
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})


class TestKFold:
    def test_partitions_cover_everything(self):
        X = np.arange(20).reshape(-1, 1)
        seen = []
        for train, validation in KFold(n_splits=4, seed=0).split(X):
            assert np.intersect1d(train, validation).size == 0
            seen.append(validation)
        assert sorted(np.concatenate(seen).tolist()) == list(range(20))

    def test_no_shuffle_is_contiguous(self):
        X = np.arange(10).reshape(-1, 1)
        folds = list(KFold(n_splits=2, shuffle=False).split(X))
        np.testing.assert_array_equal(folds[0][1], np.arange(5))

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.ones((3, 1))))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestCrossValScore:
    def test_scores_one_per_fold(self, binary_blobs):
        X, y = binary_blobs
        scores = cross_val_score(
            GaussianNaiveBayes(), X, y, KFold(n_splits=4, seed=0), accuracy
        )
        assert scores.shape == (4,)
        assert np.all(scores > 0.8)

    def test_estimator_not_mutated(self, binary_blobs):
        X, y = binary_blobs
        prototype = GaussianNaiveBayes()
        cross_val_score(prototype, X, y, KFold(n_splits=3, seed=0))
        assert not hasattr(prototype, "classes_")


class TestGridSearchCV:
    def test_finds_better_depth(self, binary_blobs):
        X, y = binary_blobs
        search = GridSearchCV(
            DecisionTreeClassifier(seed=0),
            {"max_depth": [1, 6]},
            splitter=KFold(n_splits=3, seed=0),
        )
        search.fit(X, y)
        assert search.best_params_["max_depth"] == 6
        assert len(search.results_) == 2

    def test_refit_produces_usable_model(self, binary_blobs):
        X, y = binary_blobs
        search = GridSearchCV(
            GaussianNaiveBayes(),
            {"var_smoothing": [1e-9, 1e-3]},
            splitter=KFold(n_splits=3, seed=0),
        )
        search.fit(X, y)
        assert search.predict(X).shape == y.shape
        assert search.predict_proba(X).shape == (y.size, 2)

    def test_no_refit_blocks_predict(self, binary_blobs):
        X, y = binary_blobs
        search = GridSearchCV(
            GaussianNaiveBayes(),
            {"var_smoothing": [1e-9]},
            splitter=KFold(n_splits=3, seed=0),
            refit=False,
        )
        search.fit(X, y)
        with pytest.raises(RuntimeError):
            search.predict(X)

    def test_results_sorted_by_insertion(self, binary_blobs):
        X, y = binary_blobs
        search = GridSearchCV(
            DecisionTreeClassifier(seed=0),
            {"max_depth": [1, 2, 3]},
            splitter=KFold(n_splits=3, seed=0),
        )
        search.fit(X, y)
        depths = [r["params"]["max_depth"] for r in search.results_]
        assert depths == [1, 2, 3]
        for result in search.results_:
            assert len(result["fold_scores"]) == 3
