"""Unit tests for GaussianNaiveBayes."""

import numpy as np
import pytest

from repro.ml.naive_bayes import GaussianNaiveBayes


class TestGaussianNaiveBayes:
    def test_separable_blobs_high_accuracy(self, binary_blobs):
        X, y = binary_blobs
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_probabilities_sum_to_one(self, binary_blobs):
        X, y = binary_blobs
        probabilities = GaussianNaiveBayes().fit(X, y).predict_proba(X[:20])
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_learned_means_match_data(self):
        generator = np.random.default_rng(1)
        X0 = generator.normal(-2.0, 0.5, (400, 2))
        X1 = generator.normal(3.0, 0.5, (400, 2))
        X = np.vstack([X0, X1])
        y = np.array([0] * 400 + [1] * 400)
        model = GaussianNaiveBayes().fit(X, y)
        np.testing.assert_allclose(model.theta_[0], [-2.0, -2.0], atol=0.1)
        np.testing.assert_allclose(model.theta_[1], [3.0, 3.0], atol=0.1)

    def test_class_priors_respected(self):
        generator = np.random.default_rng(2)
        X = generator.normal(0, 1, (100, 1))
        y = np.array([0] * 90 + [1] * 10)
        model = GaussianNaiveBayes().fit(X, y)
        assert np.exp(model.class_log_prior_[0]) == pytest.approx(0.9)

    def test_constant_feature_survives(self):
        X = np.column_stack([np.ones(40), np.concatenate([np.zeros(20), np.ones(20)])])
        y = np.array([0] * 20 + [1] * 20)
        model = GaussianNaiveBayes().fit(X, y)
        assert np.all(np.isfinite(model.predict_proba(X)))

    def test_multiclass(self):
        generator = np.random.default_rng(3)
        X = np.vstack(
            [generator.normal(center, 0.3, (50, 2)) for center in (-3, 0, 3)]
        )
        y = np.repeat([0, 1, 2], 50)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.classes_.shape == (3,)
        assert model.score(X, y) > 0.95

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1.0)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            GaussianNaiveBayes().fit(np.ones((4, 2, 2)), np.array([0, 1, 0, 1]))

    def test_string_labels(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["healthy", "healthy", "faulty", "faulty"])
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict(np.array([[5.05]]))[0] == "faulty"
