"""Gradient checks and behaviour tests for the neural layers.

Every backward pass is validated against central finite differences —
the canonical correctness test for hand-written backprop.
"""

import numpy as np
import pytest

from repro.ml.nn.layers import LSTM, Conv1D, Dense, LastTimestep, ReLU
from repro.ml.nn.optimizers import SGD, Adam


def _numeric_gradient(f, x, epsilon=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = f()
        flat[i] = original - epsilon
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


def _check_layer_gradients(layer, x, atol=1e-5):
    """Compare analytic grads (input + params) with finite differences."""
    rng = np.random.default_rng(0)
    out = layer.forward(x)
    upstream = rng.normal(size=out.shape)

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    analytic_input = layer.backward(upstream)
    numeric_input = _numeric_gradient(loss, x)
    np.testing.assert_allclose(analytic_input, numeric_input, atol=atol)

    layer.forward(x)
    layer.backward(upstream)
    for param, grad in zip(layer.params, layer.grads):
        analytic = grad.copy()
        numeric = _numeric_gradient(loss, param)
        np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestDense:
    def test_forward_shape_and_values(self):
        layer = Dense(3, 2, np.random.default_rng(0))
        layer.W[...] = np.arange(6).reshape(3, 2)
        layer.b[...] = [1.0, -1.0]
        out = layer.forward(np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out, [[1.0, 0.0]])

    def test_gradients(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        _check_layer_gradients(layer, rng.normal(size=(5, 4)))


class TestReLU:
    def test_forward_clips_negative(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(grad, [[0.0, 5.0]])


class TestConv1D:
    def test_output_shape_same_padding(self):
        rng = np.random.default_rng(2)
        layer = Conv1D(4, 6, kernel_size=3, rng=rng)
        out = layer.forward(rng.normal(size=(2, 9, 4)))
        assert out.shape == (2, 9, 6)

    def test_identity_kernel(self):
        rng = np.random.default_rng(3)
        layer = Conv1D(1, 1, kernel_size=3, rng=rng)
        layer.W[...] = 0.0
        layer.W[1, 0, 0] = 1.0  # center tap only
        layer.b[...] = 0.0
        x = rng.normal(size=(1, 7, 1))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_gradients(self):
        rng = np.random.default_rng(4)
        layer = Conv1D(2, 3, kernel_size=3, rng=rng)
        _check_layer_gradients(layer, rng.normal(size=(2, 6, 2)))

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv1D(1, 1, kernel_size=2, rng=np.random.default_rng(0))


class TestLSTM:
    def test_output_shape(self):
        rng = np.random.default_rng(5)
        layer = LSTM(3, 8, rng)
        out = layer.forward(rng.normal(size=(4, 6, 3)))
        assert out.shape == (4, 6, 8)

    def test_hidden_state_bounded(self):
        rng = np.random.default_rng(6)
        layer = LSTM(2, 4, rng)
        out = layer.forward(rng.normal(0, 10, size=(3, 20, 2)))
        assert np.all(np.abs(out) <= 1.0)  # h = o * tanh(c), |o|<=1

    def test_gradients(self):
        rng = np.random.default_rng(7)
        layer = LSTM(2, 3, rng)
        _check_layer_gradients(layer, rng.normal(size=(2, 4, 2)), atol=1e-4)

    def test_sequence_order_matters(self):
        rng = np.random.default_rng(8)
        layer = LSTM(1, 4, rng)
        x = rng.normal(size=(1, 5, 1))
        forward = layer.forward(x)[:, -1]
        reversed_out = layer.forward(x[:, ::-1])[:, -1]
        assert not np.allclose(forward, reversed_out)


class TestLastTimestep:
    def test_selects_final_step(self):
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        out = LastTimestep().forward(x)
        np.testing.assert_array_equal(out, x[:, -1])

    def test_backward_scatters(self):
        layer = LastTimestep()
        x = np.zeros((1, 3, 2))
        layer.forward(x)
        grad = layer.backward(np.array([[1.0, 2.0]]))
        assert grad.shape == x.shape
        np.testing.assert_array_equal(grad[0, -1], [1.0, 2.0])
        np.testing.assert_array_equal(grad[0, :-1], 0.0)


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        param = np.array([5.0])
        optimizer = SGD(learning_rate=0.1)
        for _ in range(100):
            grad = 2 * param  # d/dx x^2
            optimizer.step([param], [grad])
        assert abs(param[0]) < 1e-3

    def test_sgd_momentum_faster_on_ravine(self):
        def run(momentum):
            param = np.array([5.0, 5.0])
            optimizer = SGD(learning_rate=0.02, momentum=momentum)
            for _ in range(50):
                grad = np.array([2 * param[0], 20 * param[1]])
                optimizer.step([param], [grad])
            return abs(param[0])

        assert run(0.9) < run(0.0)

    def test_adam_descends_quadratic(self):
        param = np.array([5.0])
        optimizer = Adam(learning_rate=0.3)
        for _ in range(200):
            optimizer.step([param], [2 * param])
        assert abs(param[0]) < 1e-2

    def test_invalid_learning_rates(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            Adam(learning_rate=-1.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
