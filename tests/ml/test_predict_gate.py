"""Tiny-size never-slower gate for the inference fast path.

A miniature of ``make bench-predict``'s gate, run by ``make smoke``:
on a small forest and a window-sized batch, the binned arena must not
lose to the seed per-tree loop. The full benchmark pins the >=2x win;
this gate only guards against the fast path regressing into a slow
path (a broken code table falling back to per-row work, an arena
rebuild per call) without needing benchmark-scale fixtures. Slack is
wide because these runs are sub-millisecond.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks._util import never_slower
from repro.ml.arena import get_inference_mode, set_inference_mode
from repro.ml.forest import RandomForestClassifier

pytestmark = pytest.mark.smoke

#: Sub-millisecond predict calls need generous absolute slack.
TINY_SLACK_SECONDS = 0.05


@pytest.fixture(autouse=True)
def restore_mode():
    previous = get_inference_mode()
    yield
    set_inference_mode(previous)


def _timed_best(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_binned_arena_never_slower_than_exact():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(600, 8))
    y = (X[:, 0] + X[:, 2] > 0.5).astype(int)
    model = RandomForestClassifier(
        n_estimators=10, max_depth=8, seed=0, n_jobs=1
    ).fit(X, y)
    rows = rng.normal(scale=2.0, size=(512, 8))
    set_inference_mode("binned")
    model.predict_proba(rows[:4])  # build the arena once; time steady state

    set_inference_mode("exact")
    exact = model.predict_proba(rows)
    exact_seconds = _timed_best(lambda: model.predict_proba(rows))
    set_inference_mode("binned")
    np.testing.assert_array_equal(model.predict_proba(rows), exact)
    binned_seconds = _timed_best(lambda: model.predict_proba(rows))

    assert never_slower(
        exact_seconds, binned_seconds, slack_seconds=TINY_SLACK_SECONDS
    ), (
        f"binned arena lost to the seed loop: exact {exact_seconds:.4f}s "
        f"vs binned {binned_seconds:.4f}s on 512 rows"
    )
