"""Unit tests for RandomUnderSampler."""

import numpy as np
import pytest

from repro.ml.resampling import RandomUnderSampler


def _imbalanced(n_minority=20, n_majority=400, seed=0):
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(n_minority + n_majority, 3))
    y = np.array([1] * n_minority + [0] * n_majority)
    order = generator.permutation(y.size)
    return X[order], y[order]


class TestRandomUnderSampler:
    def test_target_ratio_achieved(self):
        X, y = _imbalanced()
        Xr, yr = RandomUnderSampler(ratio=3.0, seed=1).fit_resample(X, y)
        assert np.sum(yr == 1) == 20
        assert np.sum(yr == 0) == 60

    def test_ratio_one_balances(self):
        X, y = _imbalanced()
        _, yr = RandomUnderSampler(ratio=1.0, seed=1).fit_resample(X, y)
        assert np.sum(yr == 0) == np.sum(yr == 1)

    def test_minority_kept_intact(self):
        X, y = _imbalanced()
        Xr, yr = RandomUnderSampler(ratio=2.0, seed=5).fit_resample(X, y)
        minority_rows = {tuple(row) for row in X[y == 1]}
        resampled_minority = {tuple(row) for row in Xr[yr == 1]}
        assert resampled_minority == minority_rows

    def test_majority_smaller_than_target_untouched(self):
        X, y = _imbalanced(n_minority=50, n_majority=60)
        _, yr = RandomUnderSampler(ratio=3.0).fit_resample(X, y)
        assert np.sum(yr == 0) == 60  # fewer than 150, keep all

    def test_extras_stay_aligned(self):
        X, y = _imbalanced()
        days = np.arange(y.size)
        Xr, yr, days_r = RandomUnderSampler(ratio=1.0, seed=2).fit_resample(X, y, days)
        assert days_r.shape[0] == yr.shape[0]
        # Relative order preserved -> days strictly increasing.
        assert np.all(np.diff(days_r) > 0)

    def test_deterministic_by_seed(self):
        X, y = _imbalanced()
        a = RandomUnderSampler(ratio=2.0, seed=9).fit_resample(X, y)
        b = RandomUnderSampler(ratio=2.0, seed=9).fit_resample(X, y)
        np.testing.assert_array_equal(a[0], b[0])

    def test_single_class_passthrough(self):
        X = np.ones((5, 2))
        y = np.zeros(5)
        Xr, yr = RandomUnderSampler(ratio=1.0).fit_resample(X, y)
        assert yr.shape[0] == 5

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            RandomUnderSampler(ratio=0.0)

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ValueError):
            RandomUnderSampler().fit_resample(np.ones((3, 1)), np.ones(4))
        with pytest.raises(ValueError):
            RandomUnderSampler().fit_resample(np.ones((3, 1)), np.ones(3), np.ones(2))
