"""Unit tests for the Pegasos linear SVM."""

import numpy as np
import pytest

from repro.ml.svm import LinearSVM


class TestLinearSVM:
    def test_separable_blobs_high_accuracy(self, binary_blobs):
        X, y = binary_blobs
        model = LinearSVM(n_epochs=20, seed=0).fit(X, y)
        assert model.score(X, y) > 0.93

    def test_decision_function_sign_matches_prediction(self, binary_blobs):
        X, y = binary_blobs
        model = LinearSVM(n_epochs=15).fit(X, y)
        margins = model.decision_function(X)
        predictions = model.predict(X)
        assert np.all((margins > 0) == (predictions == model.classes_[1]))

    def test_probabilities_monotone_in_margin(self, binary_blobs):
        X, y = binary_blobs
        model = LinearSVM(n_epochs=10).fit(X, y)
        margins = model.decision_function(X)
        probabilities = model.predict_proba(X)[:, 1]
        order = np.argsort(margins)
        assert np.all(np.diff(probabilities[order]) >= 0)

    def test_scale_invariance_through_standardization(self):
        generator = np.random.default_rng(4)
        X = np.vstack(
            [generator.normal(0, 1, (100, 2)), generator.normal(3, 1, (100, 2))]
        )
        y = np.array([0] * 100 + [1] * 100)
        scaled = X * np.array([1e6, 1e-6])
        base = LinearSVM(n_epochs=15, seed=1).fit(X, y).score(X, y)
        huge = LinearSVM(n_epochs=15, seed=1).fit(scaled, y).score(scaled, y)
        assert abs(base - huge) < 0.05

    def test_multiclass_rejected(self):
        X = np.ones((6, 2)) * np.arange(6)[:, None]
        y = np.array([0, 1, 2, 0, 1, 2])
        with pytest.raises(ValueError, match="binary"):
            LinearSVM().fit(X, y)

    def test_deterministic_by_seed(self, binary_blobs):
        X, y = binary_blobs
        a = LinearSVM(n_epochs=5, seed=3).fit(X, y)
        b = LinearSVM(n_epochs=5, seed=3).fit(X, y)
        np.testing.assert_array_equal(a.coef_, b.coef_)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            LinearSVM(C=0)
        with pytest.raises(ValueError):
            LinearSVM(n_epochs=0)

    def test_regularization_strength_shrinks_weights(self, binary_blobs):
        X, y = binary_blobs
        weak = LinearSVM(C=100.0, n_epochs=15, seed=0).fit(X, y)
        strong = LinearSVM(C=0.001, n_epochs=15, seed=0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)
