"""Unit tests for CART classification and regression trees."""

import numpy as np
import pytest

from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    _resolve_max_features,
)


class TestClassificationTree:
    def test_memorizes_training_data_unbounded(self, binary_blobs):
        X, y = binary_blobs
        model = DecisionTreeClassifier().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)

    def test_single_split_problem(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert model.score(X, y) == 1.0
        assert model.tree_.n_leaves == 2
        # Threshold must sit between the class clusters.
        assert 2.0 < model.tree_.threshold[0] < 10.0

    def test_max_depth_respected(self, binary_blobs):
        X, y = binary_blobs
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.tree_.depth() <= 3

    def test_min_samples_leaf_respected(self, binary_blobs):
        X, y = binary_blobs
        model = DecisionTreeClassifier(min_samples_leaf=30).fit(X, y)
        # Every leaf's probability vector comes from >= 30 samples; the
        # tree cannot have more than n/30 leaves.
        assert model.tree_.n_leaves <= X.shape[0] // 30

    def test_pure_node_stops_splitting(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.zeros(10, dtype=int)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.tree_.n_nodes == 1

    def test_feature_importances_sum_to_one(self, binary_blobs):
        X, y = binary_blobs
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_irrelevant_feature_gets_no_importance(self):
        generator = np.random.default_rng(0)
        informative = np.concatenate([np.zeros(100), np.ones(100)])
        noise = generator.random(200)
        X = np.column_stack([informative, noise])
        y = informative.astype(int)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.feature_importances_[0] > 0.95

    def test_predict_proba_rows_sum_to_one(self, binary_blobs):
        X, y = binary_blobs
        probabilities = DecisionTreeClassifier(max_depth=4).fit(X, y).predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_constant_features_yield_single_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.tree_.n_nodes == 1
        assert np.all(model.predict_proba(X)[:, 0] == 0.5)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_deterministic_with_max_features(self, binary_blobs):
        X, y = binary_blobs
        a = DecisionTreeClassifier(max_features="sqrt", seed=5).fit(X, y)
        b = DecisionTreeClassifier(max_features="sqrt", seed=5).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))


class TestRegressionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        predictions = model.predict(X)
        np.testing.assert_allclose(predictions, y, atol=1e-9)

    def test_depth_limits_approximation(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = np.sin(2 * np.pi * X[:, 0])
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        err_shallow = np.mean((shallow.predict(X) - y) ** 2)
        err_deep = np.mean((deep.predict(X) - y) ** 2)
        assert err_deep < err_shallow

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 3.3)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.tree_.n_nodes == 1
        np.testing.assert_allclose(model.predict(X), 3.3)

    def test_prediction_is_leaf_mean(self):
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([1.0, 3.0, 10.0, 20.0])
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        np.testing.assert_allclose(model.predict(np.array([[0.0]])), [2.0])
        np.testing.assert_allclose(model.predict(np.array([[1.0]])), [15.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((3, 1)), np.ones(4))


class TestMaxFeatures:
    def test_resolution_table(self):
        assert _resolve_max_features(None, 10) == 10
        assert _resolve_max_features("sqrt", 16) == 4
        assert _resolve_max_features("log2", 16) == 4
        assert _resolve_max_features(0.5, 10) == 5
        assert _resolve_max_features(3, 10) == 3
        assert _resolve_max_features(99, 10) == 10

    def test_invalid_spec_raises(self):
        with pytest.raises(ValueError):
            _resolve_max_features("cube", 10)
        with pytest.raises(ValueError):
            _resolve_max_features(-1, 10)

    def test_booleans_rejected(self):
        # bool is an int subclass: True must not silently mean "1
        # feature per split".
        with pytest.raises(ValueError, match="boolean"):
            _resolve_max_features(True, 10)
        with pytest.raises(ValueError, match="boolean"):
            _resolve_max_features(False, 10)
        with pytest.raises(ValueError, match="boolean"):
            _resolve_max_features(np.True_, 10)
        with pytest.raises(ValueError, match="boolean"):
            DecisionTreeClassifier(max_features=True).fit(
                np.array([[0.0], [1.0]]), np.array([0, 1])
            )


class TestSplitAlgorithmParam:
    def test_unknown_backend_rejected(self):
        for factory in (DecisionTreeClassifier, DecisionTreeRegressor):
            with pytest.raises(ValueError, match="split_algorithm"):
                factory(split_algorithm="histo")

    def test_both_backends_accepted(self):
        assert DecisionTreeClassifier(split_algorithm="hist").split_algorithm == "hist"
        assert DecisionTreeRegressor(split_algorithm="exact").split_algorithm == "exact"

    def test_mismatched_binned_shape_rejected(self):
        from repro.ml.binning import build_binned

        X = np.arange(20, dtype=float).reshape(-1, 2)
        y = np.array([0, 1] * 5)
        wrong = build_binned(X[:5])
        with pytest.raises(ValueError, match="does not match"):
            DecisionTreeClassifier(split_algorithm="hist").fit(X, y, binned=wrong)
