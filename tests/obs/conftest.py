"""Observability tests share one invariant: no state leaks between
tests. The tracer, registry, run context and logging config are all
process-global, so every test runs against a clean slate."""

from __future__ import annotations

import pytest

from repro.obs import disable_observability
from repro.obs.logs import configure_logging


@pytest.fixture(autouse=True)
def clean_obs_state():
    disable_observability()
    configure_logging(level="info", json_lines=False)
    yield
    disable_observability()
    configure_logging(level="info", json_lines=False)
