"""A strict Prometheus text-exposition (v0.0.4) parser for tests.

Deliberately unforgiving: any line that is not a well-formed HELP/TYPE
comment or sample line raises, label values are fully unescaped, and
:func:`validate_exposition` checks the structural invariants scrapers
rely on (TYPE before samples, cumulative monotone histogram buckets,
``_count`` equal to the ``+Inf`` bucket). The endpoint tests round-trip
`/metrics` output through this so "parser-valid while the daemon
scores" is a tested property, not a hope.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"

_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.*)$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})(?:\{{(.*)\}})? ([^ ]+)(?: (\d+))?$"
)
_LABEL_RE = re.compile(rf'({_LABEL_NAME})="((?:[^"\\]|\\.)*)"')


def unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ValueError(f"dangling backslash in label value {value!r}")
            nxt = value[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                raise ValueError(
                    f"invalid escape \\{nxt} in label value {value!r}"
                )
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw: str | None) -> dict[str, str]:
    if not raw:
        return {}
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_RE.match(raw, pos)
        if match is None:
            raise ValueError(f"malformed label pair at {raw[pos:]!r}")
        labels[match.group(1)] = unescape_label_value(match.group(2))
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise ValueError(f"expected ',' between labels in {raw!r}")
            pos += 1
    return labels


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    return float(raw)


@dataclass
class Sample:
    name: str
    labels: dict[str, str]
    value: float


@dataclass
class Family:
    name: str
    type: str | None = None
    help: str | None = None
    samples: list[Sample] = field(default_factory=list)


def _base_name(sample_name: str, families: dict[str, Family]) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name.removesuffix(suffix)
        if (
            base != sample_name
            and base in families
            and families[base].type == "histogram"
        ):
            return base
    return sample_name


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse exposition text; raise ValueError on any malformed line."""
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    families: dict[str, Family] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            type_match = _TYPE_RE.match(line)
            if help_match:
                family = families.setdefault(
                    help_match.group(1), Family(help_match.group(1))
                )
                family.help = help_match.group(2)
            elif type_match:
                family = families.setdefault(
                    type_match.group(1), Family(type_match.group(1))
                )
                if family.samples:
                    raise ValueError(
                        f"line {lineno}: TYPE after samples for {family.name}"
                    )
                family.type = type_match.group(2)
            else:
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            continue
        sample_match = _SAMPLE_RE.match(line)
        if sample_match is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        name, raw_labels, raw_value, _ts = sample_match.groups()
        base = _base_name(name, families)
        family = families.setdefault(base, Family(base))
        family.samples.append(
            Sample(name, _parse_labels(raw_labels), _parse_value(raw_value))
        )
    return families


def validate_exposition(text: str) -> dict[str, Family]:
    """Parse + check the invariants scrapers depend on."""
    families = parse_exposition(text)
    for family in families.values():
        if family.samples and family.type is None:
            raise ValueError(f"{family.name}: samples without a TYPE line")
        if family.type != "histogram":
            continue
        # Group histogram series by their non-`le` label set.
        series: dict[tuple, dict] = {}
        for sample in family.samples:
            key = tuple(
                sorted((k, v) for k, v in sample.labels.items() if k != "le")
            )
            group = series.setdefault(
                key, {"buckets": [], "sum": None, "count": None}
            )
            if sample.name.endswith("_bucket"):
                if "le" not in sample.labels:
                    raise ValueError(f"{family.name}: bucket without le label")
                group["buckets"].append(
                    (_parse_value(sample.labels["le"]), sample.value)
                )
            elif sample.name.endswith("_sum"):
                group["sum"] = sample.value
            elif sample.name.endswith("_count"):
                group["count"] = sample.value
            else:
                raise ValueError(
                    f"{family.name}: unexpected histogram sample {sample.name}"
                )
        for key, group in series.items():
            buckets = group["buckets"]
            if not buckets:
                raise ValueError(f"{family.name}{dict(key)}: no buckets")
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds):
                raise ValueError(f"{family.name}{dict(key)}: unsorted buckets")
            if bounds[-1] != float("inf"):
                raise ValueError(f"{family.name}{dict(key)}: missing +Inf")
            counts = [c for _, c in buckets]
            if counts != sorted(counts):
                raise ValueError(
                    f"{family.name}{dict(key)}: non-cumulative buckets"
                )
            if group["count"] is None or group["sum"] is None:
                raise ValueError(f"{family.name}{dict(key)}: missing sum/count")
            if group["count"] != counts[-1]:
                raise ValueError(
                    f"{family.name}{dict(key)}: _count {group['count']} != "
                    f"+Inf bucket {counts[-1]}"
                )
    return families
