"""End-to-end CLI observability: obs flags, run manifests and the
``repro obs report`` renderer."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import get_tracer, load_manifest, validate_manifest

pytestmark = pytest.mark.smoke


@pytest.fixture(scope="module")
def saved_fleet(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs_cli") / "fleet"
    code = main(
        [
            "simulate", str(path),
            "--vendor", "I=120",
            "--horizon-days", "200",
            "--failure-boost", "30",
            "--seed", "5",
        ]
    )
    assert code == 0
    return path


def _train(saved_fleet, *extra):
    return main(
        [
            "train", str(saved_fleet),
            "--train-end-day", "140",
            "--eval-end-day", "200",
            *extra,
        ]
    )


class TestFlags:
    def test_obs_flags_on_instrumented_commands(self):
        for command in ("train", "monitor", "chaos"):
            args = build_parser().parse_args(
                [command, "d", "--trace", "--run-dir", "r", "--log-level", "debug"]
            )
            assert args.trace and args.run_dir == "r"
            assert args.log_level == "debug"

    def test_obs_report_parses(self):
        args = build_parser().parse_args(["obs", "report", "runs/demo"])
        assert args.obs_command == "report"
        assert args.run_dir == "runs/demo"


class TestRunManifest:
    @pytest.fixture(scope="class")
    def train_run(self, saved_fleet, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("obs_cli") / "run"
        code = _train(saved_fleet, "--trace", "--run-dir", str(run_dir))
        assert code == 0
        return run_dir

    def test_manifest_written_and_valid(self, train_run):
        manifest = load_manifest(train_run)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "train"
        assert manifest["status"] == "ok"

    def test_span_tree_covers_pipeline_stages(self, train_run):
        manifest = load_manifest(train_run)
        names = {record["name"] for record in manifest["spans"]}
        assert names.issuperset(
            {
                "train",
                "load_dataset",
                "pipeline.fit",
                "feature_engineering",
                "labeling",
                "sampling",
                "training",
                "pipeline.evaluate",
            }
        )
        for record in manifest["spans"]:
            assert record["wall_seconds"] >= 0
            assert record["cpu_seconds"] >= 0

    def test_provenance_annotations(self, train_run):
        annotations = load_manifest(train_run)["annotations"]
        assert len(annotations["config_hash"]) == 16
        assert len(annotations["dataset_fingerprint"]) == 16
        assert annotations["n_jobs"] == 1

    def test_headline_results_recorded(self, train_run):
        results = load_manifest(train_run)["results"]
        assert 0 <= results["drive_tpr"] <= 1
        assert "record_auc" in results

    def test_grid_and_forest_counters_present(self, train_run):
        manifest = load_manifest(train_run)
        families = {f["name"]: f for f in manifest["metrics"]}
        assert "mfpa_grid_search_fits_total" in families
        trees = families["forest_trees_fitted_total"]["samples"][0]["value"]
        assert trees > 0

    def test_prometheus_snapshot_next_to_manifest(self, train_run):
        prom = (train_run / "metrics.prom").read_text()
        assert "# TYPE forest_trees_fitted_total counter" in prom

    def test_obs_report_renders(self, train_run, capsys):
        code = main(["obs", "report", str(train_run)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "pipeline.fit" in out
        assert "forest_trees_fitted_total" in out

    def test_obs_report_does_not_rewrite_manifest(self, train_run):
        before = (train_run / "manifest.json").read_bytes()
        assert main(["obs", "report", str(train_run)]) == 0
        assert (train_run / "manifest.json").read_bytes() == before


class TestMetricsOut:
    def test_jsonl_export(self, saved_fleet, tmp_path):
        out = tmp_path / "metrics.jsonl"
        assert _train(saved_fleet, "--metrics-out", str(out)) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        by_name = {r["name"]: r for r in records}
        assert by_name["forest_trees_fitted_total"]["value"] > 0

    def test_prom_export_by_extension(self, saved_fleet, tmp_path):
        out = tmp_path / "metrics.prom"
        assert _train(saved_fleet, "--metrics-out", str(out)) == 0
        assert "# TYPE forest_trees_fitted_total counter" in out.read_text()


class TestMonitorManifest:
    def test_alarm_and_window_counters(self, saved_fleet, tmp_path):
        run_dir = tmp_path / "mon"
        code = main(
            [
                "monitor", str(saved_fleet),
                "--start-day", "100",
                "--end-day", "200",
                "--window-days", "30",
                "--run-dir", str(run_dir),
            ]
        )
        assert code == 0
        manifest = load_manifest(run_dir)
        assert validate_manifest(manifest) == []
        families = {f["name"]: f for f in manifest["metrics"]}
        windows = families["monitor_windows_scored_total"]["samples"][0]["value"]
        assert windows > 0
        graded = {
            s["labels"].get("kind"): s["value"]
            for s in families["monitor_alarms_total"]["samples"]
        }
        raised = families["monitor_alarms_raised_total"]["samples"][0]["value"]
        assert sum(graded.values()) == raised
        assert manifest["results"]["n_alarms"] == raised


class TestStateHygiene:
    def test_default_run_leaves_observability_off(self, saved_fleet):
        assert _train(saved_fleet) == 0
        assert not get_tracer().enabled
        assert get_tracer().totals == {}

    def test_traced_run_resets_after_exit(self, saved_fleet, tmp_path):
        assert _train(saved_fleet, "--run-dir", str(tmp_path / "r")) == 0
        assert not get_tracer().enabled
        assert get_tracer().totals == {}

    def test_default_output_unchanged_by_prior_traced_run(
        self, saved_fleet, capsys
    ):
        assert _train(saved_fleet) == 0
        plain = capsys.readouterr().out
        assert _train(saved_fleet, "--trace") == 0
        traced_out = capsys.readouterr().out
        assert _train(saved_fleet) == 0
        plain_again = capsys.readouterr().out
        assert plain_again == plain
        assert "Span tree" in traced_out
        assert traced_out.startswith(plain)
