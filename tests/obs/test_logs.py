"""Unit tests for structured logging.

The central contract: at the default level in plain mode, ``log.info``
output is byte-identical to the ``print()`` it replaced — that is what
keeps the CLI's pinned stdout tests green.
"""

import json

import pytest

from repro.obs.logs import configure_logging, get_logger

pytestmark = pytest.mark.smoke


class TestPlainMode:
    def test_info_matches_print_exactly(self, capsys):
        message = "simulated 120 drives / 12810 records -> fleet"
        print(message)
        printed = capsys.readouterr().out
        get_logger("repro.cli").info(message)
        assert capsys.readouterr().out == printed

    def test_fields_invisible_in_plain_mode(self, capsys):
        get_logger("t").info("hello", n_drives=120)
        assert capsys.readouterr().out == "hello\n"

    def test_multiline_message_preserved(self, capsys):
        table = "a | b\n--+--\n1 | 2"
        print(table)
        printed = capsys.readouterr().out
        get_logger("t").info(table)
        assert capsys.readouterr().out == printed


class TestLevels:
    def test_debug_suppressed_at_info(self, capsys):
        get_logger("t").debug("hidden")
        assert capsys.readouterr().out == ""

    def test_debug_shown_when_configured(self, capsys):
        configure_logging(level="debug")
        get_logger("t").debug("visible")
        assert capsys.readouterr().out == "visible\n"

    def test_warning_threshold_hides_info(self, capsys):
        configure_logging(level="warning")
        logger = get_logger("t")
        logger.info("hidden")
        logger.warning("shown")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "shown\n"

    def test_warnings_go_to_stderr_not_stdout(self, capsys):
        """Diagnostics must not perturb parity-sensitive stdout."""
        logger = get_logger("t")
        logger.warning("careful")
        logger.error("broken")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "careful\nbroken\n"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="chatty")


class TestJsonMode:
    def test_record_shape(self, capsys):
        configure_logging(level="info", json_lines=True)
        get_logger("repro.cli").info("saved", path="/tmp/x", n=3)
        record = json.loads(capsys.readouterr().out)
        assert record["level"] == "info"
        assert record["logger"] == "repro.cli"
        assert record["message"] == "saved"
        assert record["fields"] == {"path": "/tmp/x", "n": 3}
        assert isinstance(record["ts"], float)

    def test_no_fields_key_when_empty(self, capsys):
        configure_logging(json_lines=True)
        get_logger("t").info("bare")
        assert "fields" not in json.loads(capsys.readouterr().out)


class TestCaching:
    def test_same_name_same_instance(self):
        assert get_logger("x") is get_logger("x")
        assert get_logger("x") is not get_logger("y")
