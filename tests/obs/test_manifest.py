"""Unit tests for run manifests: provenance digests, the writer and
the checked-in schema."""

import json

import pytest

from repro.core.pipeline import MFPAConfig
from repro.obs import (
    config_hash,
    dataset_fingerprint,
    load_manifest,
    start_run,
    validate_manifest,
)
from repro.obs.manifest import load_schema
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

pytestmark = pytest.mark.smoke


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_hash(MFPAConfig()) == config_hash(MFPAConfig())

    def test_changes_with_any_knob(self):
        base = config_hash(MFPAConfig())
        assert config_hash(MFPAConfig(theta=14)) != base
        assert config_hash(MFPAConfig(feature_group_name="SF")) != base

    def test_n_jobs_changes_hash_but_format_is_stable(self):
        # n_jobs is part of the config dataclass, so it participates; the
        # digest itself is 16 hex chars either way.
        for config in (MFPAConfig(), MFPAConfig(n_jobs=4)):
            digest = config_hash(config)
            assert len(digest) == 16
            int(digest, 16)

    def test_accepts_plain_mappings(self):
        assert config_hash({"a": 1}) == config_hash({"a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestDatasetFingerprint:
    def test_deterministic(self, small_fleet):
        assert dataset_fingerprint(small_fleet) == dataset_fingerprint(small_fleet)

    def test_sensitive_to_content_change(self, small_fleet):
        from repro.telemetry.dataset import TelemetryDataset

        columns = {
            name: values.copy() for name, values in small_fleet.columns.items()
        }
        columns["s12_power_on_hours"][0] += 1.0
        mutated = TelemetryDataset(
            columns, dict(small_fleet.drives), list(small_fleet.tickets)
        )
        assert dataset_fingerprint(mutated) != dataset_fingerprint(small_fleet)

    def test_sensitive_to_dropped_rows(self, small_fleet):
        import numpy as np

        keep = np.ones(small_fleet.n_records, dtype=bool)
        keep[:10] = False
        assert dataset_fingerprint(small_fleet.select_rows(keep)) != (
            dataset_fingerprint(small_fleet)
        )


class TestRunContext:
    def _finalized(self, tmp_path, status="ok"):
        run = start_run(tmp_path / "run", command="train", args={"theta": 7})
        run.annotate(config_hash="abc", seed=0)
        run.record_result("tpr", 0.9)
        tracer = Tracer(enabled=True)
        with tracer.span("train"):
            pass
        registry = MetricsRegistry()
        registry.counter("mfpa_grid_search_fits_total").inc(3)
        run.finalize(tracer, registry, status=status)
        return run

    def test_finalize_writes_valid_manifest(self, tmp_path):
        self._finalized(tmp_path)
        manifest = load_manifest(tmp_path / "run")
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "train"
        assert manifest["annotations"] == {"config_hash": "abc", "seed": 0}
        assert manifest["results"] == {"tpr": 0.9}
        assert manifest["spans"][0]["path"] == ["train"]

    def test_finalize_writes_prometheus_snapshot(self, tmp_path):
        self._finalized(tmp_path)
        prom = (tmp_path / "run" / "metrics.prom").read_text()
        assert "mfpa_grid_search_fits_total 3" in prom

    def test_error_status_recorded(self, tmp_path):
        self._finalized(tmp_path, status="error")
        assert load_manifest(tmp_path / "run")["status"] == "error"

    def test_nan_results_become_null(self, tmp_path):
        run = start_run(tmp_path / "run", command="monitor", args={})
        run.record_result("median_lead_time_days", float("nan"))
        run.finalize(Tracer(), MetricsRegistry())
        manifest = load_manifest(tmp_path / "run")
        assert manifest["results"]["median_lead_time_days"] is None
        # and the file is strict JSON (json.loads above would have
        # accepted NaN; the raw text must not contain it)
        raw = (tmp_path / "run" / "manifest.json").read_text()
        assert "NaN" not in raw

    def test_no_tmp_file_left_behind(self, tmp_path):
        self._finalized(tmp_path)
        assert sorted(p.name for p in (tmp_path / "run").iterdir()) == [
            "manifest.json",
            "metrics.prom",
        ]

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--run-dir"):
            load_manifest(tmp_path)


class TestSchemaValidation:
    def test_schema_is_checked_in_and_loads(self):
        schema = load_schema()
        assert "manifest_version" in schema["required"]

    def test_missing_required_key_caught(self, tmp_path):
        run = start_run(tmp_path / "run", command="train", args={})
        manifest = run.build(Tracer(), MetricsRegistry())
        del manifest["run_id"]
        errors = validate_manifest(manifest)
        assert any("run_id" in error for error in errors)

    def test_bad_status_caught(self, tmp_path):
        run = start_run(tmp_path / "run", command="train", args={})
        manifest = run.build(Tracer(), MetricsRegistry())
        manifest["status"] = "exploded"
        errors = validate_manifest(manifest)
        assert any("status" in error for error in errors)

    def test_bad_span_row_caught(self, tmp_path):
        run = start_run(tmp_path / "run", command="train", args={})
        manifest = run.build(Tracer(), MetricsRegistry())
        manifest["spans"] = [{"path": ["x"], "name": "x"}]  # missing counts
        errors = validate_manifest(manifest)
        assert errors
