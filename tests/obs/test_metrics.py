"""Unit tests for the metrics registry and its exports."""

import json

import pytest

from repro.obs.metrics import (
    CATALOG,
    DAYS_BUCKETS,
    Histogram,
    MetricsRegistry,
)

pytestmark = pytest.mark.smoke


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry(declare_catalog=False)
        registry.counter("hits_total").inc()
        registry.counter("hits_total").inc(2.5)
        assert registry.counter("hits_total").value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry(declare_catalog=False)
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("hits_total").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry(declare_catalog=False)
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(1.5)
        assert registry.gauge("depth").value == 1.5

    def test_histogram_buckets_sum_count(self):
        h = Histogram(bounds=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            h.observe(value)
        # inclusive upper bounds: 0.5 and 1.0 in <=1, 3.0 in <=5, 100 overflow
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(104.5)
        assert h.mean == pytest.approx(104.5 / 4)

    def test_labels_separate_samples(self):
        registry = MetricsRegistry(declare_catalog=False)
        registry.counter("alarms_total", kind="tp").inc()
        registry.counter("alarms_total", kind="fp").inc(2)
        assert registry.counter("alarms_total", kind="tp").value == 1
        assert registry.counter("alarms_total", kind="fp").value == 2

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry(declare_catalog=False)
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")


class TestCatalog:
    def test_catalog_pre_declared_at_zero(self):
        registry = MetricsRegistry()
        dump = {entry["name"]: entry for entry in registry.dump()}
        assert dump["mfpa_grid_search_fits_total"]["samples"][0]["value"] == 0
        assert dump["monitor_windows_empty_total"]["samples"][0]["value"] == 0
        assert dump["window_score_seconds"]["samples"][0]["count"] == 0

    def test_catalog_survives_reset(self):
        registry = MetricsRegistry()
        registry.counter("mfpa_grid_search_fits_total").inc(9)
        registry.reset()
        assert registry.counter("mfpa_grid_search_fits_total").value == 0
        names = {entry["name"] for entry in registry.dump()}
        assert names.issuperset({name for name, *_ in CATALOG})

    def test_lead_time_histogram_uses_day_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("monitor_lead_time_days")
        assert h.bounds == tuple(float(b) for b in DAYS_BUCKETS)


class TestMerge:
    def test_counters_add(self):
        parent = MetricsRegistry(declare_catalog=False)
        parent.counter("n_total").inc(1)
        worker = MetricsRegistry(declare_catalog=False)
        worker.counter("n_total").inc(2)
        parent.merge(worker.dump())
        assert parent.counter("n_total").value == 3

    def test_histograms_add_bucketwise(self):
        parent = MetricsRegistry(declare_catalog=False)
        parent.histogram("t_seconds", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry(declare_catalog=False)
        worker.histogram("t_seconds", buckets=(1.0, 2.0)).observe(1.5)
        parent.merge(worker.dump())
        merged = parent.histogram("t_seconds", buckets=(1.0, 2.0))
        assert merged.count == 2
        assert merged.bucket_counts == [1, 1, 0]

    def test_histogram_bounds_mismatch_rejected(self):
        parent = MetricsRegistry(declare_catalog=False)
        parent.histogram("t_seconds", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry(declare_catalog=False)
        worker.histogram("t_seconds", buckets=(9.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            parent.merge(worker.dump())

    def test_gauge_takes_worker_value(self):
        parent = MetricsRegistry(declare_catalog=False)
        parent.gauge("depth").set(1)
        worker = MetricsRegistry(declare_catalog=False)
        worker.gauge("depth").set(7)
        parent.merge(worker.dump())
        assert parent.gauge("depth").value == 7


class TestExport:
    def test_jsonl_one_valid_record_per_sample(self):
        registry = MetricsRegistry(declare_catalog=False)
        registry.counter("a_total", kind="tp").inc(3)
        registry.histogram("b_seconds", buckets=(1.0,)).observe(0.5)
        lines = registry.to_jsonl().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 2
        by_name = {r["name"]: r for r in records}
        assert by_name["a_total"]["value"] == 3
        assert by_name["a_total"]["labels"] == {"kind": "tp"}
        assert by_name["b_seconds"]["count"] == 1

    def test_prometheus_counter_line(self):
        registry = MetricsRegistry(declare_catalog=False)
        registry.counter("alarms_total", help="graded alarms", kind="tp").inc(4)
        text = registry.to_prometheus()
        assert "# HELP alarms_total graded alarms" in text
        assert "# TYPE alarms_total counter" in text
        assert 'alarms_total{kind="tp"} 4' in text

    def test_prometheus_histogram_cumulative_with_inf(self):
        registry = MetricsRegistry(declare_catalog=False)
        h = registry.histogram("t_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            h.observe(value)
        text = registry.to_prometheus()
        assert 't_seconds_bucket{le="1"} 1' in text
        assert 't_seconds_bucket{le="2"} 2' in text
        assert 't_seconds_bucket{le="+Inf"} 3' in text
        assert "t_seconds_sum 101" in text
        assert "t_seconds_count 3" in text

    def test_prometheus_label_values_escaped(self):
        """Backslash, quote and newline in label values must be escaped
        per the exposition spec (regression: raw interpolation)."""
        registry = MetricsRegistry(declare_catalog=False)
        hostile = 'fw "v2"\\beta\nline2'
        registry.counter("faults_total", rule=hostile).inc(2)
        text = registry.to_prometheus()
        assert 'faults_total{rule="fw \\"v2\\"\\\\beta\\nline2"} 2' in text
        # No raw newline may survive inside a sample line.
        sample_lines = [
            line for line in text.splitlines() if line.startswith("faults_total{")
        ]
        assert len(sample_lines) == 1

    def test_prometheus_escaping_round_trips_through_parser(self):
        from tests.obs.promparse import validate_exposition

        registry = MetricsRegistry(declare_catalog=False)
        hostile = 'path="C:\\drives"\nnext'
        registry.counter("events_total", source=hostile).inc()
        families = validate_exposition(registry.to_prometheus())
        (sample,) = families["events_total"].samples
        assert sample.labels["source"] == hostile
