"""Cross-process observability: spans and metrics recorded inside fork
workers must aggregate to the same totals-per-name as a serial run, and
observability must never perturb model outputs."""

import time

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.obs import (
    disable_observability,
    enable_observability,
    get_registry,
    get_tracer,
    trace_span,
)
from repro.parallel import ParallelExecutor, fork_available, shutdown_pool
from repro.parallel.calibration import set_serial_fallback_mode

pytestmark = pytest.mark.smoke

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(autouse=True)
def force_pool_paths(monkeypatch):
    """Exercise real fork workers even on single-core CI boxes: disable
    the cpu_count clamp and the calibrated serial fallback, and tear the
    persistent pool down so per-test fork counters start from zero."""
    monkeypatch.setenv("REPRO_PARALLEL_OVERSUBSCRIBE", "1")
    set_serial_fallback_mode("never")
    yield
    set_serial_fallback_mode("auto")
    shutdown_pool()


def _traced_task(x):
    with trace_span("worker.task"):
        time.sleep(0.001)
        from repro.obs import inc_counter

        inc_counter("parallel_tasks_total", 0)  # touch the registry
        inc_counter("worker_items_total")
    return x * x


def _span_counts(tracer):
    """{path: count} with timings dropped — counts must match exactly
    across n_jobs; wall-clock obviously differs."""
    return {path: stats.count for path, stats in tracer.totals.items()}


def _run_traced(n_jobs):
    enable_observability()
    with trace_span("root"):
        results = ParallelExecutor(n_jobs).starmap(
            _traced_task, [(i,) for i in range(8)]
        )
    spans = _span_counts(get_tracer())
    worker_counter = get_registry().counter("worker_items_total").value
    disable_observability()
    return results, spans, worker_counter


class TestWorkerAggregation:
    @needs_fork
    def test_span_counts_identical_serial_vs_forked(self):
        serial_results, serial_spans, serial_counter = _run_traced(1)
        forked_results, forked_spans, forked_counter = _run_traced(4)
        assert forked_results == serial_results == [i * i for i in range(8)]
        assert serial_spans[("root", "parallel.starmap", "worker.task")] == 8
        assert forked_spans == serial_spans
        assert serial_counter == forked_counter == 8

    @needs_fork
    def test_worker_spans_nest_under_open_parent_span(self):
        enable_observability()
        with trace_span("outer"):
            ParallelExecutor(2).starmap(_traced_task, [(1,), (2,)])
        paths = set(get_tracer().totals)
        assert ("outer", "parallel.starmap", "worker.task") in paths

    @needs_fork
    def test_pool_fork_counter_only_in_parallel_runs(self):
        _, _, _ = _run_traced(1)
        enable_observability()
        ParallelExecutor(1).starmap(_traced_task, [(1,), (2,)])
        assert get_registry().counter("parallel_pool_forks_total").value == 0
        get_registry().reset()
        shutdown_pool()  # the persistent pool may be live from _run_traced
        ParallelExecutor(3).starmap(_traced_task, [(1,), (2,)])
        assert get_registry().counter("parallel_pool_forks_total").value == 1
        # A second dispatch reuses the live pool instead of re-forking.
        ParallelExecutor(3).starmap(_traced_task, [(3,), (4,)])
        assert get_registry().counter("parallel_pool_forks_total").value == 1
        assert get_registry().counter("parallel_pool_reuses_total").value == 1

    def test_no_capture_no_span_shipping(self):
        # With observability off, results flow through the plain task
        # protocol and nothing is recorded.
        results = ParallelExecutor(1).starmap(_traced_task, [(3,)])
        assert results == [9]
        assert get_tracer().totals == {}


class TestNonPerturbation:
    @pytest.fixture(scope="class")
    def training_data(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(0, 1, (150, 6)), rng.normal(1.2, 1, (150, 6))]
        )
        y = np.array([0] * 150 + [1] * 150)
        return X, y

    def _fit_predict(self, training_data, n_jobs):
        X, y = training_data
        model = RandomForestClassifier(n_estimators=8, seed=0, n_jobs=n_jobs)
        model.fit(X, y)
        return model.predict_proba(X)

    def test_predictions_bit_identical_obs_on_vs_off(self, training_data):
        baseline = self._fit_predict(training_data, n_jobs=1)
        enable_observability()
        traced = self._fit_predict(training_data, n_jobs=1)
        disable_observability()
        np.testing.assert_array_equal(baseline, traced)

    @needs_fork
    def test_predictions_bit_identical_obs_on_forked(self, training_data):
        baseline = self._fit_predict(training_data, n_jobs=1)
        enable_observability()
        forked = self._fit_predict(training_data, n_jobs=4)
        disable_observability()
        np.testing.assert_array_equal(baseline, forked)

    @needs_fork
    def test_forest_tree_counter_matches_across_n_jobs(self, training_data):
        counts = []
        for n_jobs in (1, 4):
            enable_observability()
            self._fit_predict(training_data, n_jobs=n_jobs)
            counts.append(
                get_registry().counter("forest_trees_fitted_total").value
            )
            disable_observability()
        assert counts == [8, 8]
