"""Endpoint tests for the live observability plane (`repro.obs.server`)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.server import (
    ObsServer,
    TextfileExporter,
    histogram_quantile,
    registry_status,
)
from tests.obs.promparse import validate_exposition

pytestmark = pytest.mark.smoke


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.headers, response.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read().decode()


@pytest.fixture()
def registry():
    registry = MetricsRegistry(declare_catalog=False)
    registry.counter("serve_ticks_total").inc(7)
    registry.gauge("serve_queue_depth").set(3)
    h = registry.histogram("window_score_seconds", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    return registry


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        # 10 observations in (0, 1], 10 in (1, 2]
        assert histogram_quantile((1.0, 2.0), [10, 10, 0], 0.5) == pytest.approx(1.0)
        assert histogram_quantile((1.0, 2.0), [10, 10, 0], 0.25) == pytest.approx(0.5)
        assert histogram_quantile((1.0, 2.0), [10, 10, 0], 0.75) == pytest.approx(1.5)

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile((1.0,), [0, 0], 0.99) == 0.0

    def test_overflow_bucket_clamps_to_last_bound(self):
        assert histogram_quantile((1.0, 2.0), [0, 0, 5], 0.5) == 2.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile((1.0,), [1, 0], 1.5)


class TestRegistryStatus:
    def test_summarizes_histograms_with_percentiles(self, registry):
        status = registry_status(registry)
        (sample,) = status["window_score_seconds"]["samples"]
        assert sample["count"] == 2
        assert sample["mean"] == pytest.approx(0.275)
        assert 0 < sample["p50"] <= sample["p95"] <= sample["p99"] <= 1.0

    def test_drops_zero_samples(self, registry):
        registry.counter("never_happened_total")
        status = registry_status(registry)
        assert "never_happened_total" not in status
        assert status["serve_ticks_total"]["samples"][0]["value"] == 7


class TestObsServer:
    def test_metrics_endpoint_parser_valid(self, registry):
        with ObsServer(port=0, registry=registry) as server:
            code, headers, body = _get(server.url + "/metrics")
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = validate_exposition(body)
        (tick,) = families["serve_ticks_total"].samples
        assert tick.value == 7

    def test_metrics_scrape_counter_increments(self, registry):
        with ObsServer(port=0, registry=registry) as server:
            _get(server.url + "/metrics")
            _get(server.url + "/metrics")
            code, _, body = _get(server.url + "/metrics")
        families = validate_exposition(body)
        scrapes = {
            s.labels["endpoint"]: s.value
            for s in families["obs_scrapes_total"].samples
        }
        # The third scrape counts itself before rendering.
        assert scrapes["/metrics"] == 3

    def test_health_defaults_ready(self, registry):
        with ObsServer(port=0, registry=registry) as server:
            code, headers, body = _get(server.url + "/health")
        assert code == 200
        payload = json.loads(body)
        assert payload["alive"] is True and payload["ready"] is True

    def test_health_503_when_not_ready(self, registry):
        health = {"alive": True, "ready": False,
                  "checks": {"queue": {"ok": False}}}
        server = ObsServer(port=0, registry=registry, health_fn=lambda: health)
        with server:
            code, _, body = _get(server.url + "/health")
        assert code == 503
        assert json.loads(body)["ready"] is False

    def test_status_merges_callable_and_metrics(self, registry):
        status_fn = lambda: {"watermark": 300, "queue": {"depth": 0}}  # noqa: E731
        with ObsServer(port=0, registry=registry, status_fn=status_fn) as server:
            code, _, body = _get(server.url + "/status")
        assert code == 200
        payload = json.loads(body)
        assert payload["watermark"] == 300
        assert payload["metrics"]["serve_ticks_total"]["samples"][0]["value"] == 7

    def test_status_sanitizes_non_finite(self, registry):
        status_fn = lambda: {"psi": float("inf"), "nan": float("nan")}  # noqa: E731
        with ObsServer(port=0, registry=registry, status_fn=status_fn) as server:
            _, _, body = _get(server.url + "/status")
        payload = json.loads(body)
        assert payload["psi"] is None and payload["nan"] is None

    def test_unknown_path_404_lists_endpoints(self, registry):
        with ObsServer(port=0, registry=registry) as server:
            code, _, body = _get(server.url + "/nope")
        assert code == 404
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_failing_status_fn_is_500_not_crash(self, registry):
        def status_fn():
            raise RuntimeError("snapshot torn")

        with ObsServer(port=0, registry=registry, status_fn=status_fn) as server:
            code, _, body = _get(server.url + "/status")
            # The server survives the failure and keeps serving.
            ok_code, _, _ = _get(server.url + "/metrics")
        assert code == 500
        assert ok_code == 200

    def test_default_registry_is_process_global(self):
        get_registry().counter("serve_ticks_total").inc(11)
        with ObsServer(port=0) as server:
            _, _, body = _get(server.url + "/metrics")
        families = validate_exposition(body)
        (tick,) = families["serve_ticks_total"].samples
        assert tick.value == 11

    def test_double_start_rejected(self, registry):
        server = ObsServer(port=0, registry=registry)
        with server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()


class TestTextfileExporter:
    def test_write_once_atomic_and_parser_valid(self, registry, tmp_path):
        target = tmp_path / "collector" / "mfpa.prom"
        exporter = TextfileExporter(target, interval=60, registry=registry)
        exporter.write_once()
        assert not target.with_name(target.name + ".tmp").exists()
        families = validate_exposition(target.read_text())
        assert families["serve_ticks_total"].samples[0].value == 7

    def test_write_counter_increments(self, registry, tmp_path):
        exporter = TextfileExporter(
            tmp_path / "m.prom", interval=60, registry=registry
        )
        exporter.write_once()
        exporter.write_once()
        assert registry.counter("obs_textfile_writes_total").value == 2

    def test_start_writes_immediately_and_stop_flushes(self, registry, tmp_path):
        target = tmp_path / "m.prom"
        exporter = TextfileExporter(target, interval=3600, registry=registry)
        exporter.start()
        try:
            assert target.exists()
            registry.counter("serve_ticks_total").inc(100)
        finally:
            exporter.stop()
        families = validate_exposition(target.read_text())
        assert families["serve_ticks_total"].samples[0].value == 107

    def test_rejects_nonpositive_interval(self, registry, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            TextfileExporter(tmp_path / "m.prom", interval=0, registry=registry)
