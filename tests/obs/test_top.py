"""Tests for the ``repro obs top`` dashboard (`repro.obs.top`)."""

from __future__ import annotations

import io

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObsServer
from repro.obs.top import ANSI_CLEAR, fetch_json, render_top, run_top

pytestmark = pytest.mark.smoke


def _status() -> dict:
    return {
        "watermark": 300,
        "window_start": 300,
        "staged": 12,
        "degraded": False,
        "queue": {"depth": 4, "capacity": 4096},
        "breaker": {"state": 0, "name": "closed"},
        "alarms": {"ledger": 5, "alarmed": 5},
        "drift": {
            "state": 2,
            "state_name": "severe",
            "worst": 0.31,
            "score": 0.02,
            "window_start": 270,
            "features": {"reallocated_sectors": 0.31, "wear_leveling": 0.05},
        },
        "metrics": {
            "serve_readings_ingested_total": {
                "type": "counter", "samples": [{"labels": {}, "value": 420}],
            },
            "window_score_seconds": {
                "type": "histogram",
                "samples": [{
                    "labels": {}, "count": 9, "sum": 0.9, "mean": 0.1,
                    "p50": 0.08, "p95": 0.2, "p99": 0.4,
                }],
            },
        },
    }


def _health(ready: bool = True) -> dict:
    return {
        "alive": True,
        "ready": ready,
        "checks": {
            "queue": {"ok": True},
            "breaker": {"ok": ready},
            "heartbeat": {"ok": True},
        },
    }


class TestRenderTop:
    def test_renders_core_fields(self):
        frame = render_top(_status(), _health())
        assert "READY" in frame
        assert "watermark=300" in frame
        assert "depth=4/4096" in frame
        assert "breaker=closed" in frame
        assert "ingested=420" in frame

    def test_not_ready_badge_and_failing_check(self):
        frame = render_top(_status(), _health(ready=False))
        assert "NOT READY" in frame
        assert "breaker=FAIL" in frame

    def test_latency_table_has_percentiles(self):
        frame = render_top(_status(), _health())
        assert "window_score_seconds" in frame
        assert "0.080" in frame and "0.400" in frame

    def test_drift_section_sorted_worst_first(self):
        frame = render_top(_status(), _health())
        assert "state=severe" in frame
        assert frame.index("reallocated_sectors") < frame.index("wear_leveling")
        assert "! reallocated_sectors" in frame  # severe glyph

    def test_health_optional(self):
        frame = render_top(_status(), None)
        assert "repro serve" in frame

    def test_empty_status_renders(self):
        assert render_top({}, None)


class TestRunTop:
    def test_polls_live_endpoint(self):
        registry = MetricsRegistry(declare_catalog=False)
        registry.counter("serve_ticks_total").inc(3)
        out = io.StringIO()
        with ObsServer(
            port=0,
            registry=registry,
            status_fn=_status,
            health_fn=_health,
        ) as server:
            frames = run_top(
                server.url, interval=0, iterations=2, clear=True, out=out,
                sleep=lambda _t: None,
            )
        assert frames == 2
        text = out.getvalue()
        assert text.count(ANSI_CLEAR) == 2
        assert "watermark=300" in text

    def test_unreachable_endpoint_counts_no_frames(self):
        frames = run_top(
            "http://127.0.0.1:9",  # discard port; nothing listens
            interval=0, iterations=2, clear=False, out=io.StringIO(),
            sleep=lambda _t: None,
        )
        assert frames == 0

    def test_fetch_json_reads_503_bodies(self):
        registry = MetricsRegistry(declare_catalog=False)
        health = {"alive": True, "ready": False, "checks": {}}
        with ObsServer(
            port=0, registry=registry, health_fn=lambda: health
        ) as server:
            payload = fetch_json(server.url + "/health")
        assert payload["ready"] is False
