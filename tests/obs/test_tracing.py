"""Unit tests for the aggregating span tracer."""

import time

import pytest

from repro.obs import get_tracer, set_tracing, trace_span, traced
from repro.obs.tracing import Tracer

pytestmark = pytest.mark.smoke


class TestNesting:
    def test_spans_nest_into_paths(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert tracer.totals[("outer",)].count == 1
        assert tracer.totals[("outer", "inner")].count == 2

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert set(tracer.totals) == {("a",), ("b",)}

    def test_timings_inclusive_and_positive(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.01)
        outer = tracer.totals[("outer",)]
        inner = tracer.totals[("outer", "inner")]
        assert inner.wall_seconds >= 0.01
        assert outer.wall_seconds >= inner.wall_seconds

    def test_exception_still_records_and_unwinds(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.totals[("outer", "inner")].count == 1
        assert tracer.totals[("outer",)].count == 1
        assert tracer.current_path == ()


class TestDisabled:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored"):
            pass
        assert tracer.totals == {}

    def test_global_tracer_off_by_default(self):
        with trace_span("ignored"):
            pass
        assert get_tracer().totals == {}

    def test_set_tracing_false_resets(self):
        set_tracing(True)
        with trace_span("kept"):
            pass
        assert get_tracer().totals
        set_tracing(False)
        assert get_tracer().totals == {}


class TestDecorator:
    def test_traced_uses_qualname_by_default(self):
        set_tracing(True)

        @traced()
        def work():
            return 42

        assert work() == 42
        paths = list(get_tracer().totals)
        assert len(paths) == 1
        assert "work" in paths[0][-1]

    def test_traced_with_explicit_name(self):
        set_tracing(True)

        @traced("custom.name")
        def work():
            return "ok"

        assert work() == "ok"
        assert get_tracer().totals[("custom.name",)].count == 1


class TestAbsorb:
    def test_absorb_under_open_span(self):
        tracer = Tracer(enabled=True)
        worker = {("task",): (3, 0.5, 0.4)}
        with tracer.span("starmap"):
            tracer.absorb(worker)
        assert tracer.totals[("starmap", "task")].count == 3
        assert tracer.totals[("starmap", "task")].wall_seconds == pytest.approx(0.5)

    def test_absorb_with_explicit_prefix(self):
        tracer = Tracer(enabled=True)
        tracer.absorb({("task",): (1, 0.1, 0.1)}, prefix=("root", "stage"))
        assert ("root", "stage", "task") in tracer.totals

    def test_absorb_accumulates_across_workers(self):
        tracer = Tracer(enabled=True)
        for _ in range(4):
            tracer.absorb({("task",): (1, 0.25, 0.2)})
        stats = tracer.totals[("task",)]
        assert stats.count == 4
        assert stats.wall_seconds == pytest.approx(1.0)

    def test_absorb_noop_when_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.absorb({("task",): (1, 0.1, 0.1)})
        assert tracer.totals == {}


class TestSerialization:
    def test_snapshot_roundtrips_through_absorb(self):
        source = Tracer(enabled=True)
        with source.span("a"):
            with source.span("b"):
                pass
        sink = Tracer(enabled=True)
        sink.absorb(source.snapshot())
        assert set(sink.totals) == set(source.totals)

    def test_span_records_sorted_parent_first(self):
        tracer = Tracer(enabled=True)
        with tracer.span("z"):
            with tracer.span("a"):
                pass
        records = tracer.span_records()
        assert [r["path"] for r in records] == [["z"], ["z", "a"]]
        assert records[0]["name"] == "z"
        assert records[1]["count"] == 1
