"""Force real pool coverage regardless of host core count.

CI boxes are often single-core, where the cpu_count clamp would
silently serialize every ``n_jobs > 1`` test and the calibrated cost
model would (correctly) refuse to dispatch tiny test workloads. These
tests exist to exercise the fork/pool machinery itself, so both guards
are disabled around each test and the persistent pool is torn down
afterwards to keep pool-lifecycle assertions independent.
"""

import pytest

from repro.parallel import shutdown_pool
from repro.parallel.calibration import set_serial_fallback_mode


@pytest.fixture(autouse=True)
def force_pool_paths(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_OVERSUBSCRIBE", "1")
    set_serial_fallback_mode("never")
    yield
    set_serial_fallback_mode("auto")
    shutdown_pool()
