"""Tiny-size never-slower gate for ``make smoke``.

A miniature of ``make bench-parallel``'s gate: with the cpu_count clamp
and the calibrated serial fallback active (production configuration —
the suite-wide test pins are undone here), ``n_jobs=4`` must not lose
to the serial loop even on workloads far too small to parallelize.
This is exactly the regime where the pre-pool executor posted negative
speedups: on a small host it forked a pool per call, and on any host
it paid dispatch overhead for sub-millisecond tasks. The slack is
wider than the full benchmark's because these runs are sub-second.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks._util import never_slower
from repro.core.deployment import FleetMonitor
from repro.ml.forest import RandomForestClassifier
from repro.parallel import shutdown_pool
from repro.parallel.calibration import get_cost_model, set_serial_fallback_mode

pytestmark = pytest.mark.smoke


def _timed(fn, repeats=2):
    """Best-of-``repeats`` timing: on a loaded single-core host a lone
    run can swing by hundreds of milliseconds of scheduler noise, which
    is wider than this gate's whole margin; the minimum of two runs is
    what the code path actually costs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best

#: Sub-second workloads need more absolute slack than the full bench.
TINY_SLACK_SECONDS = 0.25


@pytest.fixture()
def production_parallel_config(monkeypatch):
    """Undo the suite-wide pins: real clamp, calibrated fallback."""
    monkeypatch.delenv("REPRO_PARALLEL_OVERSUBSCRIBE", raising=False)
    set_serial_fallback_mode("auto")
    get_cost_model().reset()
    shutdown_pool()
    yield
    shutdown_pool()
    get_cost_model().reset()


def test_tiny_forest_fit_never_slower(
    production_parallel_config, binary_blobs
):
    X, y = binary_blobs

    def fit(n_jobs):
        model = RandomForestClassifier(
            n_estimators=8, max_depth=6, seed=0, n_jobs=n_jobs
        ).fit(X, y)
        return model.predict_proba(X)

    serial, serial_seconds = _timed(lambda: fit(1))
    parallel, parallel_seconds = _timed(lambda: fit(4))
    np.testing.assert_array_equal(serial, parallel)
    assert never_slower(
        serial_seconds, parallel_seconds, slack_seconds=TINY_SLACK_SECONDS
    ), f"tiny forest fit: serial {serial_seconds:.3f}s, n_jobs=4 {parallel_seconds:.3f}s"


def test_tiny_fleet_scoring_never_slower(
    production_parallel_config, small_fleet
):
    def score(n_jobs):
        monitor = FleetMonitor(n_jobs=n_jobs)
        monitor.start(small_fleet, train_end_day=240)
        return [monitor.score_window(day, day + 40) for day in range(240, 360, 40)]

    serial, serial_seconds = _timed(lambda: score(1))
    parallel, parallel_seconds = _timed(lambda: score(4))
    assert serial == parallel
    assert never_slower(
        serial_seconds, parallel_seconds, slack_seconds=TINY_SLACK_SECONDS
    ), f"tiny fleet scoring: serial {serial_seconds:.3f}s, n_jobs=4 {parallel_seconds:.3f}s"
