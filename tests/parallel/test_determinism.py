"""Determinism suite: every ``n_jobs`` setting must be bit-identical.

The parallel layer's contract is that worker pools only change
wall-clock, never results: randomness is pre-derived in serial order and
task outputs are recombined in task order. These tests pin that contract
for each parallelized surface.
"""

import numpy as np
import pytest

from repro.core.deployment import simulate_operation
from repro.core.selection import SequentialForwardSelector, youden_score
from repro.core.splitting import TimeSeriesCrossValidator
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import GridSearchCV, KFold, cross_val_score
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.parallel import fork_available

pytestmark = [
    pytest.mark.smoke,
    pytest.mark.skipif(not fork_available(), reason="parallel path requires fork"),
]


class TestForestDeterminism:
    def test_classifier_identical_across_n_jobs(self, binary_blobs):
        X, y = binary_blobs
        serial = RandomForestClassifier(n_estimators=12, max_depth=5, seed=9, n_jobs=1)
        parallel = RandomForestClassifier(n_estimators=12, max_depth=5, seed=9, n_jobs=4)
        serial.fit(X, y)
        parallel.fit(X, y)
        np.testing.assert_array_equal(
            serial.predict_proba(X), parallel.predict_proba(X)
        )
        np.testing.assert_array_equal(
            serial.feature_importances_, parallel.feature_importances_
        )

    def test_regressor_identical_across_n_jobs(self):
        rng = np.random.default_rng(4)
        X = rng.normal(0, 1, (200, 6))
        y = X[:, 0] * 2 + rng.normal(0, 0.1, 200)
        serial = RandomForestRegressor(n_estimators=10, max_depth=4, seed=2, n_jobs=1)
        parallel = RandomForestRegressor(n_estimators=10, max_depth=4, seed=2, n_jobs=4)
        np.testing.assert_array_equal(
            serial.fit(X, y).predict(X), parallel.fit(X, y).predict(X)
        )


class TestSearchDeterminism:
    def test_cross_val_score_identical(self, binary_blobs):
        X, y = binary_blobs
        splitter = KFold(n_splits=4, seed=0)
        serial = cross_val_score(GaussianNaiveBayes(), X, y, splitter, n_jobs=1)
        parallel = cross_val_score(GaussianNaiveBayes(), X, y, splitter, n_jobs=4)
        np.testing.assert_array_equal(serial, parallel)

    def test_grid_search_identical(self, binary_blobs):
        from repro.ml.tree import DecisionTreeClassifier

        X, y = binary_blobs
        grid = {"max_depth": [1, 3, 6], "min_samples_leaf": [1, 5]}

        def search(n_jobs):
            return GridSearchCV(
                DecisionTreeClassifier(seed=0),
                grid,
                splitter=KFold(n_splits=3, seed=0),
                n_jobs=n_jobs,
            ).fit(X, y)

        serial, parallel = search(1), search(4)
        assert serial.best_params_ == parallel.best_params_
        assert serial.best_score_ == parallel.best_score_
        assert serial.results_ == parallel.results_
        np.testing.assert_array_equal(
            serial.predict_proba(X), parallel.predict_proba(X)
        )

    def test_forward_selection_identical(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 200)
        X = rng.normal(0, 1, (200, 6))
        X[:, 1] += 2.0 * y
        X[:, 4] -= 1.5 * y

        def select(n_jobs):
            selector = SequentialForwardSelector(
                GaussianNaiveBayes(),
                KFold(n_splits=3, seed=0),
                scoring=youden_score,
                n_jobs=n_jobs,
            )
            return selector.select(X, y), selector.history_

        serial, parallel = select(1), select(4)
        assert serial == parallel


class TestPipelineDeterminism:
    def test_grid_searched_pipeline_uses_sorted_days(self, small_fleet):
        """The pipeline's CV now carries the sorted day array; fitting
        with a grid must succeed (monotonic guard satisfied) and stay
        deterministic across n_jobs."""
        from repro.core.pipeline import MFPA, MFPAConfig
        from repro.ml.tree import DecisionTreeClassifier

        def fit(n_jobs):
            config = MFPAConfig(
                feature_group_name="S",
                algorithm=DecisionTreeClassifier(seed=0),
                param_grid={"max_depth": [3, 6]},
                n_jobs=n_jobs,
            )
            model = MFPA(config)
            model.fit(small_fleet, train_end_day=240)
            return model

        serial, parallel = fit(1), fit(2)
        assert serial.search_.best_params_ == parallel.search_.best_params_
        assert serial.search_.results_ == parallel.search_.results_


class TestMonitorDeterminism:
    def test_operation_summary_identical(self, small_fleet):
        def run(n_jobs):
            return simulate_operation(
                small_fleet,
                start_day=240,
                end_day=360,
                window_days=40,
                n_jobs=n_jobs,
            )

        serial = run(1)
        parallel = run(2)
        assert serial.windows == parallel.windows
        assert serial.true_alarms == parallel.true_alarms
        assert serial.false_alarms == parallel.false_alarms
        assert serial.missed_failures == parallel.missed_failures
        assert serial.lead_times == parallel.lead_times

    def test_time_series_cv_selection_identical(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 240)
        X = rng.normal(0, 1, (240, 5))
        X[:, 0] += 2.5 * y
        days = np.arange(240)

        def select(n_jobs):
            return SequentialForwardSelector(
                GaussianNaiveBayes(),
                TimeSeriesCrossValidator(k=3, days=days),
                scoring=youden_score,
                max_features=3,
                n_jobs=n_jobs,
            ).select(X, y)

        assert select(1) == select(4)
