"""Unit tests for the process-pool execution layer."""

import os

import numpy as np
import pytest

from repro.parallel import (
    ParallelExecutor,
    StalePayloadError,
    effective_n_jobs,
    fork_available,
    share,
)
from repro.parallel import executor as executor_module
from repro.parallel.shared import in_worker

pytestmark = pytest.mark.smoke


def _square(x):
    return x * x


def _payload_sum(data, scale):
    return float(data.get().sum()) * scale


def _nested_probe(_):
    # Inside a worker, a nested executor must degrade to serial instead
    # of forking recursively.
    return ParallelExecutor(4).is_parallel


class TestEffectiveNJobs:
    def test_none_and_one_are_serial(self):
        assert effective_n_jobs(None) == 1
        assert effective_n_jobs(1) == 1

    def test_positive_passthrough(self):
        # The conftest fixture disables the cpu_count clamp.
        assert effective_n_jobs(7) == 7

    def test_clamped_to_cpu_count(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PARALLEL_OVERSUBSCRIBE", raising=False)
        executor_module._WARNED_CLAMPS.clear()
        cap = os.cpu_count() or 1
        assert effective_n_jobs(cap + 3) == cap
        assert f"clamping to {cap}" in capsys.readouterr().err
        # Warned once per distinct request, not per executor.
        assert effective_n_jobs(cap + 3) == cap
        assert capsys.readouterr().err == ""

    def test_minus_one_is_all_cores(self):
        assert effective_n_jobs(-1) == (os.cpu_count() or 1)

    def test_negative_counts_back_with_floor(self):
        assert effective_n_jobs(-((os.cpu_count() or 1) + 5)) == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            effective_n_jobs(0)


class TestSharedPayload:
    def test_roundtrip_inside_context(self):
        with share({"x": 1}) as handle:
            assert handle.get() == {"x": 1}

    def test_handle_invalid_after_context(self):
        with share([1, 2]) as handle:
            pass
        with pytest.raises(StalePayloadError, match="released"):
            handle.get()

    def test_handles_are_independent(self):
        with share("a") as first, share("b") as second:
            assert first.get() == "a"
            assert second.get() == "b"


class TestParallelExecutor:
    def test_serial_preserves_order(self):
        assert ParallelExecutor(1).starmap(_square, [(i,) for i in range(6)]) == [
            0,
            1,
            4,
            9,
            16,
            25,
        ]

    def test_single_task_never_forks(self):
        # Even at n_jobs=8 a single task runs in-process.
        assert ParallelExecutor(8).starmap(_square, [(3,)]) == [9]

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_parallel_preserves_order(self):
        result = ParallelExecutor(4).starmap(_square, [(i,) for i in range(20)])
        assert result == [i * i for i in range(20)]

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_workers_see_shared_payload(self):
        array = np.arange(100.0)
        with share(array) as data:
            results = ParallelExecutor(2).starmap(
                _payload_sum, [(data, scale) for scale in (1.0, 2.0, 3.0)]
            )
        assert results == [4950.0, 9900.0, 14850.0]

    @pytest.mark.skipif(not fork_available(), reason="requires fork")
    def test_nested_executor_degrades_to_serial(self):
        flags = ParallelExecutor(2).starmap(_nested_probe, [(i,) for i in range(4)])
        assert flags == [False, False, False, False]
        # The parent itself is unaffected by worker-side flags.
        assert not in_worker()

    def test_serial_when_fork_unavailable(self, monkeypatch):
        monkeypatch.setattr(executor_module, "fork_available", lambda: False)
        executor = ParallelExecutor(4)
        assert not executor.is_parallel
        assert executor.starmap(_square, [(2,), (3,)]) == [4, 9]
