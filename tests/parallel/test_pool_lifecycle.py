"""Persistent-pool lifecycle: reuse, re-fork, calibration, clamping.

The pool outliving a single ``starmap`` is only correct if nothing
observable changes when it does: forest and monitor outputs must stay
bit-identical across pool reuse, across an induced worker death and
re-fork, and with the calibrated serial fallback forced both on and
off. The conftest fixture pins fallback mode ``"never"`` (and disables
the cpu_count clamp); tests that exercise other modes set their own.
"""

import os
import time

import numpy as np
import pytest

from repro.core.deployment import simulate_operation
from repro.ml.forest import RandomForestClassifier
from repro.obs import get_registry, set_current_run
from repro.obs.manifest import start_run
from repro.parallel import (
    ParallelExecutor,
    SharedPayload,
    StalePayloadError,
    fork_available,
    share,
    shutdown_pool,
)
from repro.parallel import pool as pool_manager
from repro.parallel.calibration import (
    get_cost_model,
    set_serial_fallback_mode,
)

pytestmark = [
    pytest.mark.smoke,
    pytest.mark.skipif(not fork_available(), reason="requires fork"),
]


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.001)
    return x * x


def _counter(name: str) -> float:
    return get_registry().counter(name).value


def _kill_pool_workers() -> None:
    """Induce worker death in the live persistent pool."""
    workers = list(pool_manager._pool._pool)
    for process in workers:
        process.terminate()
    deadline = time.monotonic() + 10
    while any(p.is_alive() for p in workers):
        assert time.monotonic() < deadline, "workers did not die"
        time.sleep(0.01)


class TestPoolReuse:
    def test_second_starmap_reuses_the_pool(self):
        executor = ParallelExecutor(2)
        forks = _counter("parallel_pool_forks_total")
        reuses = _counter("parallel_pool_reuses_total")
        first = executor.starmap(_square, [(i,) for i in range(8)])
        second = executor.starmap(_square, [(i,) for i in range(8)])
        assert first == second == [i * i for i in range(8)]
        assert _counter("parallel_pool_forks_total") - forks == 1
        assert _counter("parallel_pool_reuses_total") - reuses == 1
        stats = pool_manager.pool_stats()
        assert stats["live"] and stats["workers"] == 2

    def test_forest_bit_identical_across_pool_reuse(self, binary_blobs):
        X, y = binary_blobs

        def fit(n_jobs):
            model = RandomForestClassifier(
                n_estimators=8, max_depth=5, seed=3, n_jobs=n_jobs
            )
            return model.fit(X, y).predict_proba(X)

        serial = fit(1)
        # Two parallel fits: the second rides the pool the first forked.
        np.testing.assert_array_equal(serial, fit(2))
        assert pool_manager.pool_stats()["live"]
        np.testing.assert_array_equal(serial, fit(2))

    def test_monitor_bit_identical_across_pool_reuse(self, small_fleet):
        def run(n_jobs):
            summary = simulate_operation(
                small_fleet,
                start_day=240,
                end_day=320,
                window_days=40,
                n_jobs=n_jobs,
            )
            return summary.alarm_records(), summary.lead_times

        serial = run(1)
        # Every window of both parallel runs shares one pool.
        assert run(2) == serial
        assert run(2) == serial


class TestWorkerDeathRecovery:
    def test_refork_after_induced_worker_death(self):
        executor = ParallelExecutor(2)
        assert executor.starmap(_square, [(i,) for i in range(6)]) == [
            i * i for i in range(6)
        ]
        restarts = _counter("parallel_pool_restarts_total")
        _kill_pool_workers()
        assert executor.starmap(_square, [(i,) for i in range(6)]) == [
            i * i for i in range(6)
        ]
        assert _counter("parallel_pool_restarts_total") - restarts == 1

    def test_forest_bit_identical_after_worker_death(self, binary_blobs):
        X, y = binary_blobs

        def fit(n_jobs):
            model = RandomForestClassifier(
                n_estimators=8, max_depth=5, seed=7, n_jobs=n_jobs
            )
            return model.fit(X, y).predict_proba(X)

        serial = fit(1)
        np.testing.assert_array_equal(serial, fit(2))
        _kill_pool_workers()
        np.testing.assert_array_equal(serial, fit(2))


class TestGenerationSafety:
    def test_new_payload_after_fork_restarts_pool(self):
        executor = ParallelExecutor(2)
        executor.starmap(_square, [(i,) for i in range(4)])
        restarts = _counter("parallel_pool_restarts_total")
        with share(np.arange(10.0), name="late") as handle:
            results = executor.starmap(
                _payload_total, [(handle,), (handle,)]
            )
        assert results == [45.0, 45.0]
        assert _counter("parallel_pool_restarts_total") - restarts == 1

    def test_resharing_same_object_reuses_pool(self):
        executor = ParallelExecutor(2)
        payload = np.arange(20.0)
        with share(payload) as handle:
            executor.starmap(_payload_total, [(handle,), (handle,)])
        restarts = _counter("parallel_pool_restarts_total")
        reuses = _counter("parallel_pool_reuses_total")
        # The monitor's per-window pattern: share the same object again.
        with share(payload) as handle:
            results = executor.starmap(_payload_total, [(handle,), (handle,)])
        assert results == [190.0, 190.0]
        assert _counter("parallel_pool_restarts_total") - restarts == 0
        assert _counter("parallel_pool_reuses_total") - reuses == 1


class TestCalibratedFallback:
    def test_forced_on_runs_serial_with_identical_results(self):
        set_serial_fallback_mode("always")
        executor = ParallelExecutor(4)
        fallbacks = _counter("parallel_serial_fallbacks_total")
        results = executor.starmap(_square, [(i,) for i in range(12)])
        assert results == [i * i for i in range(12)]
        assert _counter("parallel_serial_fallbacks_total") - fallbacks == 1
        assert not pool_manager.pool_stats()["live"]

    def test_auto_keeps_tiny_tasks_serial(self):
        set_serial_fallback_mode("auto")
        model = get_cost_model()
        model.reset()
        model.observe_spinup(0.05)
        model.observe_dispatch(0.001)
        model.observe_task(model.task_key(_square), 1e-6)
        fallbacks = _counter("parallel_serial_fallbacks_total")
        results = ParallelExecutor(4).starmap(_square, [(i,) for i in range(12)])
        assert results == [i * i for i in range(12)]
        assert _counter("parallel_serial_fallbacks_total") - fallbacks == 1
        assert not pool_manager.pool_stats()["live"]

    def test_auto_dispatches_when_measured_work_is_large(self):
        set_serial_fallback_mode("auto")
        model = get_cost_model()
        model.reset()
        model.observe_spinup(0.01)
        model.observe_dispatch(0.0001)
        model.observe_task(model.task_key(_slow_square), 0.5)
        results = ParallelExecutor(4).starmap(
            _slow_square, [(i,) for i in range(8)]
        )
        assert results == [i * i for i in range(8)]
        assert pool_manager.pool_stats()["live"]

    def test_auto_probes_unknown_tasks_in_process(self):
        set_serial_fallback_mode("auto")
        model = get_cost_model()
        model.reset()
        key = model.task_key(_slow_square)
        assert model.estimate_task(key) is None
        results = ParallelExecutor(4).starmap(
            _slow_square, [(i,) for i in range(4)]
        )
        assert results == [i * i for i in range(4)]
        # The probe ran task #0 in-process and recorded its duration.
        assert model.estimate_task(key) is not None

    def test_forest_bit_identical_fallback_on_and_off(self, binary_blobs):
        X, y = binary_blobs

        def fit():
            model = RandomForestClassifier(
                n_estimators=8, max_depth=5, seed=5, n_jobs=2
            )
            return model.fit(X, y).predict_proba(X)

        set_serial_fallback_mode("never")
        pooled = fit()
        set_serial_fallback_mode("always")
        fallback = fit()
        np.testing.assert_array_equal(pooled, fallback)


class TestClamping:
    def test_clamp_annotates_active_run(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_OVERSUBSCRIBE", raising=False)
        run = start_run(tmp_path / "run", command="train", args={})
        set_current_run(run)
        try:
            requested = (os.cpu_count() or 1) + 3
            executor = ParallelExecutor(requested)
            assert executor.n_jobs == (os.cpu_count() or 1)
            assert run.annotations["parallel_requested_n_jobs"] == requested
            assert (
                run.annotations["parallel_effective_n_jobs"]
                == executor.n_jobs
            )
        finally:
            set_current_run(None)


class TestStalePayloadErrors:
    def test_unregistered_token_is_typed_and_actionable(self):
        handle = SharedPayload(999999, name="ghost", generation=42)
        with pytest.raises(StalePayloadError) as excinfo:
            handle.get()
        assert excinfo.value.payload_name == "ghost"
        assert excinfo.value.generation == 42
        assert "ghost" in str(excinfo.value)
        assert "generation 42" in str(excinfo.value)

    def test_released_handle_is_typed(self):
        with share({"a": 1}, name="config") as handle:
            assert handle.get() == {"a": 1}
        with pytest.raises(StalePayloadError, match="config.*released"):
            handle.get()


def _payload_total(handle):
    return float(handle.get().sum())
