"""Checkpoint determinism: crash at any window boundary, resume identically."""

import pytest

from repro.core import MFPAConfig
from repro.core.deployment import (
    FleetMonitor,
    RetrainPolicy,
    simulate_operation,
)
from repro.robustness.checkpoint import (
    MONITOR_FILES,
    CheckpointCorruptError,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
    write_manifest,
)
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

START, END, WINDOW = 240, 360, 30
N_WINDOWS = (END - START) // WINDOW

#: A retrain is forced mid-horizon so the checkpoint must also capture
#: the refreshed model, not just the alarm ledger.
POLICY = RetrainPolicy(interval_days=60, min_new_failures=0)


@pytest.fixture(scope="module")
def fleet():
    return simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 120}),
            horizon_days=420,
            failure_boost=25.0,
            seed=17,
        )
    )


@pytest.fixture(scope="module")
def uninterrupted(fleet):
    return simulate_operation(
        fleet, policy=POLICY, start_day=START, end_day=END, window_days=WINDOW
    )


class TestResumeDeterminism:
    @pytest.mark.parametrize("boundary", range(N_WINDOWS + 1))
    def test_crash_and_resume_at_every_boundary(
        self, fleet, uninterrupted, boundary, tmp_path
    ):
        """Kill after `boundary` windows, restore, finish — identical summary."""
        checkpoint = str(tmp_path / "ckpt")
        partial = simulate_operation(
            fleet,
            policy=POLICY,
            start_day=START,
            end_day=END,
            window_days=WINDOW,
            checkpoint_dir=checkpoint,
            max_windows=boundary,
        )
        assert len(partial.windows) == boundary
        resumed = simulate_operation(
            fleet,
            policy=POLICY,
            start_day=START,
            end_day=END,
            window_days=WINDOW,
            checkpoint_dir=checkpoint,
            resume=True,
        )
        assert resumed == uninterrupted

    def test_retrain_happened_during_horizon(self, uninterrupted):
        # guard: the sweep above must actually exercise a mid-horizon retrain
        assert any(w.retrained for w in uninterrupted.windows)


class TestCheckpointFormat:
    def test_roundtrip_restores_monitor_state(self, fleet, tmp_path):
        monitor = FleetMonitor(policy=POLICY)
        monitor.start(fleet, train_end_day=START)
        windows = [monitor.score_window(START, START + WINDOW)]
        save_checkpoint(monitor, windows, tmp_path / "ckpt")

        restored, restored_windows = load_checkpoint(tmp_path / "ckpt", fleet)
        assert restored._alarmed == monitor._alarmed
        assert restored._last_trained_day == monitor._last_trained_day
        assert restored._failures_at_training == monitor._failures_at_training
        assert restored.alarm_threshold == monitor.alarm_threshold
        assert restored_windows == windows

        # the restored monitor scores the next window identically
        expected = monitor.score_window(START + WINDOW, START + 2 * WINDOW)
        actual = restored.score_window(START + WINDOW, START + 2 * WINDOW)
        assert actual == expected

    def test_has_checkpoint(self, fleet, tmp_path):
        assert not has_checkpoint(tmp_path / "ckpt")
        monitor = FleetMonitor(policy=POLICY)
        monitor.start(fleet, train_end_day=START)
        save_checkpoint(monitor, [], tmp_path / "ckpt")
        assert has_checkpoint(tmp_path / "ckpt")

    def test_unstarted_monitor_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="start"):
            save_checkpoint(FleetMonitor(), [], tmp_path / "ckpt")

    def test_missing_checkpoint_rejected(self, fleet, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope", fleet)

    def test_version_check(self, fleet, tmp_path):
        import json

        monitor = FleetMonitor(policy=POLICY)
        monitor.start(fleet, train_end_day=START)
        path = save_checkpoint(monitor, [], tmp_path / "ckpt")
        state = json.loads((path / "state.json").read_text())
        state["version"] = 999
        (path / "state.json").write_text(json.dumps(state))
        # Re-commit the manifest: this test is about the version gate,
        # not tamper detection (that's TestCheckpointIntegrity).
        write_manifest(path, MONITOR_FILES)
        with pytest.raises(ValueError, match="checkpoint version"):
            load_checkpoint(path, fleet)

    def test_config_survives_roundtrip(self, fleet, tmp_path):
        config = MFPAConfig(feature_group_name="SF", decision_threshold=0.4)
        monitor = FleetMonitor(config=config, policy=POLICY)
        monitor.start(fleet, train_end_day=START)
        save_checkpoint(monitor, [], tmp_path / "ckpt")
        restored, _ = load_checkpoint(tmp_path / "ckpt", fleet)
        assert restored.config.feature_group_name == "SF"
        assert restored.config.decision_threshold == 0.4


class TestCheckpointIntegrity:
    """Satellite: sha256 manifest, truncation detection, half-pair cleanup."""

    @pytest.fixture()
    def checkpoint(self, fleet, tmp_path):
        monitor = FleetMonitor(policy=POLICY)
        monitor.start(fleet, train_end_day=START)
        return save_checkpoint(monitor, [], tmp_path / "ckpt")

    def test_manifest_written_and_verified(self, checkpoint, fleet):
        assert (checkpoint / "manifest.json").exists()
        load_checkpoint(checkpoint, fleet)  # verifies without raising

    def test_truncated_model_raises_typed_error(self, checkpoint, fleet):
        """Truncate model.pkl mid-file: typed error, not a pickle traceback."""
        model = checkpoint / "model.pkl"
        data = model.read_bytes()
        model.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            load_checkpoint(checkpoint, fleet)

    def test_bitflip_same_size_raises_typed_error(self, checkpoint, fleet):
        """Same-size corruption is caught by the sha256, not the size."""
        model = checkpoint / "model.pkl"
        data = bytearray(model.read_bytes())
        data[len(data) // 2] ^= 0xFF
        model.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="sha256"):
            load_checkpoint(checkpoint, fleet)

    def test_half_pair_cleaned_up(self, checkpoint, fleet):
        """state.json without model.pkl (crash between writes) is not a
        usable checkpoint; the stray files are swept so a fresh run can
        recreate the directory cleanly."""
        (checkpoint / "model.pkl").unlink()
        assert not has_checkpoint(checkpoint)
        assert not (checkpoint / "state.json").exists()
        assert not (checkpoint / "manifest.json").exists()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(checkpoint, fleet)

    def test_crash_between_writes_then_rerun_recovers(self, fleet, tmp_path):
        """A run that died between the two file writes must not poison
        the next run: simulate_operation starts from scratch and matches
        the uninterrupted result."""
        checkpoint = tmp_path / "ckpt"
        monitor = FleetMonitor(policy=POLICY)
        monitor.start(fleet, train_end_day=START)
        save_checkpoint(monitor, [], checkpoint)
        (checkpoint / "state.json").unlink()  # crash after model, before state

        expected = simulate_operation(
            fleet, policy=POLICY, start_day=START, end_day=END, window_days=WINDOW
        )
        recovered = simulate_operation(
            fleet,
            policy=POLICY,
            start_day=START,
            end_day=END,
            window_days=WINDOW,
            checkpoint_dir=str(checkpoint),
            resume=True,
        )
        assert recovered == expected

    def test_manifest_garbage_raises_typed_error(self, checkpoint, fleet):
        (checkpoint / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointCorruptError, match="manifest"):
            load_checkpoint(checkpoint, fleet)

    def test_legacy_checkpoint_without_manifest_still_loads(
        self, checkpoint, fleet
    ):
        """Pre-manifest checkpoints (no manifest.json) load unverified."""
        (checkpoint / "manifest.json").unlink()
        load_checkpoint(checkpoint, fleet)
