"""Unit tests for degraded-mode (missing-dimension) scoring."""

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.core.client import ClientPredictor
from repro.core.deployment import FleetMonitor
from repro.robustness.degraded import (
    DegradedScorer,
    adapt_for_missing_dimensions,
    fit_reduced_model,
    missing_dimensions,
    reduced_group_name,
)
from repro.robustness.faults import MissingDimension, inject
from repro.telemetry.dataset import B_COLUMNS, W_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS


@pytest.fixture(scope="module")
def fitted(small_fleet):
    model = MFPA(MFPAConfig())
    model.fit(small_fleet, train_end_day=240)
    return model


@pytest.fixture(scope="module")
def reduced(small_fleet):
    return fit_reduced_model(small_fleet, 240)


def _full_reading(model, serial, index):
    rows = model.dataset_.drive_rows(serial)
    reading = {"firmware": rows["firmware"][index]}
    for column in (*SMART_COLUMNS, *W_COLUMNS, *B_COLUMNS):
        reading[column] = float(rows[column][index])
    return int(rows["day"][index]), reading


class TestMissingDimensions:
    def test_complete_dataset_has_none(self, small_fleet):
        assert missing_dimensions(small_fleet) == ()

    def test_detects_removed_dimension(self, small_fleet):
        corrupted = inject(small_fleet, [MissingDimension("B")], seed=0)
        assert missing_dimensions(corrupted) == ("B",)

    def test_reduced_group_names(self):
        assert reduced_group_name("SFWB", ("W",)) == "SFB"
        assert reduced_group_name("SFWB", ("W", "B")) == "SF"
        assert reduced_group_name("SFWB", ("W", "B", "firmware")) == "S"
        assert reduced_group_name("SF", ()) == "SF"

    def test_no_usable_reduction(self):
        with pytest.raises(ValueError, match="no usable reduction"):
            reduced_group_name("W", ("W",))


class TestAdaptation:
    def test_identity_when_complete(self, small_fleet):
        dataset, config, missing = adapt_for_missing_dimensions(
            small_fleet, MFPAConfig()
        )
        assert dataset is small_fleet
        assert missing == ()

    def test_zero_fills_and_reduces(self, small_fleet):
        corrupted = inject(small_fleet, [MissingDimension("W")], seed=0)
        dataset, config, missing = adapt_for_missing_dimensions(
            corrupted, MFPAConfig()
        )
        assert missing == ("W",)
        assert config.feature_group_name == "SFB"
        for column in W_COLUMNS:
            assert np.all(dataset.columns[column] == 0.0)

    def test_degraded_monitor_trains_and_scores(self, small_fleet):
        corrupted = inject(small_fleet, [MissingDimension("W")], seed=0)
        monitor = FleetMonitor(allow_degraded=True)
        monitor.start(corrupted, train_end_day=240)
        assert monitor.degraded_dimensions_ == ("W",)
        assert monitor.config.feature_group_name == "SFB"
        window = monitor.score_window(240, 300)
        assert window.n_drives_scored > 0

    def test_strict_monitor_still_rejects(self, small_fleet):
        corrupted = inject(small_fleet, [MissingDimension("W")], seed=0)
        monitor = FleetMonitor()
        with pytest.raises(KeyError):
            monitor.start(corrupted, train_end_day=240)


class TestImputingPredictor:
    def test_missing_smart_imputes_last_known(self, fitted):
        predictor = ClientPredictor.from_model(fitted, on_missing="impute")
        serial = int(fitted.dataset_.serials[0])
        day0, reading0 = _full_reading(fitted, serial, 0)
        predictor.observe(serial, day0, reading0)
        assert not predictor.last_prediction_degraded

        day1, reading1 = _full_reading(fitted, serial, 1)
        partial = dict(reading1)
        del partial["s2_temperature"]
        predictor.observe(serial, day1, partial)
        assert predictor.last_prediction_degraded
        assert "s2_temperature" in predictor.last_missing_columns
        assert predictor.n_degraded_predictions(serial) == 1

    def test_cold_start_missing_everything_scores_zeroes(self, fitted):
        predictor = ClientPredictor.from_model(fitted, on_missing="impute")
        probability = predictor.observe(1, 0, {})
        assert 0.0 <= probability <= 1.0
        assert predictor.last_prediction_degraded

    def test_invalid_policy_rejected(self, fitted):
        with pytest.raises(ValueError, match="on_missing"):
            ClientPredictor.from_model(fitted, on_missing="explode")


class TestDegradedScorer:
    def test_complete_reading_not_degraded(self, fitted, reduced):
        scorer = DegradedScorer.from_models(fitted, reduced)
        serial = int(fitted.dataset_.serials[0])
        day, reading = _full_reading(fitted, serial, 0)
        prediction = scorer.observe(serial, day, reading)
        assert not prediction.degraded
        assert not prediction.used_reduced_model

    def test_missing_dimension_routes_to_reduced(self, fitted, reduced):
        scorer = DegradedScorer.from_models(fitted, reduced)
        serial = int(fitted.dataset_.serials[0])
        day, reading = _full_reading(fitted, serial, 0)
        partial = {
            k: v for k, v in reading.items()
            if k not in W_COLUMNS and k not in B_COLUMNS
        }
        prediction = scorer.observe(serial, day, partial)
        assert prediction.degraded
        assert prediction.used_reduced_model
        assert set(prediction.missing) == {"W", "B"}

    def test_reduced_matches_standalone_sf_model(self, fitted, reduced):
        """Routing must produce exactly the reduced model's probability."""
        scorer = DegradedScorer.from_models(fitted, reduced)
        standalone = ClientPredictor.from_model(reduced, on_missing="impute")
        serial = int(fitted.dataset_.failed_serials()[0])
        day, reading = _full_reading(fitted, serial, 0)
        partial = {
            k: v for k, v in reading.items()
            if k not in W_COLUMNS and k not in B_COLUMNS
        }
        prediction = scorer.observe(serial, day, partial)
        assert prediction.probability == standalone.observe(serial, day, partial)

    def test_without_reduced_model_imputes(self, fitted):
        scorer = DegradedScorer.from_models(fitted)
        serial = int(fitted.dataset_.serials[0])
        day, reading = _full_reading(fitted, serial, 0)
        partial = {
            k: v for k, v in reading.items()
            if k not in W_COLUMNS and k not in B_COLUMNS
        }
        prediction = scorer.observe(serial, day, partial)
        assert prediction.degraded
        assert not prediction.used_reduced_model

    def test_alarm_uses_full_threshold(self, fitted, reduced):
        scorer = DegradedScorer.from_models(fitted, reduced)
        serial = int(fitted.dataset_.serials[0])
        day, reading = _full_reading(fitted, serial, 0)
        alarmed, prediction = scorer.alarm(serial, day, reading)
        assert alarmed == (prediction.probability >= scorer.threshold)
