"""Unit tests for the chaos fault injectors."""

import numpy as np
import pytest

from repro.robustness.faults import (
    FAULT_REGISTRY,
    CounterReset,
    DropDays,
    DuplicateRows,
    MissingDimension,
    OutOfOrder,
    StuckSensor,
    inject,
    inject_stream,
    make_fault,
)
from repro.telemetry.dataset import W_COLUMNS
from repro.telemetry.validation import validate_dataset

ALL_INJECTORS = [
    DropDays(),
    DuplicateRows(),
    StuckSensor(),
    CounterReset(),
    MissingDimension("W"),
    OutOfOrder(),
]


def _columns_equal(a, b):
    if set(a.columns) != set(b.columns):
        return False
    for name, values in a.columns.items():
        other = b.columns[name]
        if values.dtype == object:
            if values.tolist() != other.tolist():
                return False
        elif not np.array_equal(values, other, equal_nan=True):
            return False
    return True


class TestDeterminism:
    @pytest.mark.parametrize("injector", ALL_INJECTORS, ids=lambda i: i.name)
    def test_same_seed_same_corruption(self, small_fleet, injector):
        first = inject(small_fleet, [injector], seed=9)
        second = inject(small_fleet, [injector], seed=9)
        assert _columns_equal(first, second)

    def test_input_not_mutated(self, small_fleet):
        before = {k: v.copy() for k, v in small_fleet.columns.items()}
        inject(small_fleet, ALL_INJECTORS, seed=1)
        assert _columns_equal(
            small_fleet,
            type(small_fleet)(before, small_fleet.drives, small_fleet.tickets),
        )


class TestEachFaultBreaksItsInvariant:
    def test_drop_days_removes_rows(self, small_fleet):
        corrupted = DropDays(fraction=0.2).apply(small_fleet, np.random.default_rng(0))
        assert corrupted.n_records < small_fleet.n_records

    def test_duplicate_rows_flagged(self, small_fleet):
        corrupted = DuplicateRows(fraction=0.1).apply(
            small_fleet, np.random.default_rng(0)
        )
        assert any("duplicate" in v for v in validate_dataset(corrupted))

    def test_stuck_sensor_injects_nonfinite(self, small_fleet):
        corrupted = StuckSensor(
            column="s2_temperature", drive_fraction=1.0, nan_fraction=0.5
        ).apply(small_fleet, np.random.default_rng(0))
        assert any("non-finite" in v for v in validate_dataset(corrupted))

    def test_counter_reset_breaks_monotonicity(self, small_fleet):
        corrupted = CounterReset(
            column="s12_power_on_hours", drive_fraction=1.0
        ).apply(small_fleet, np.random.default_rng(0))
        assert any("decreases" in v for v in validate_dataset(corrupted))

    def test_missing_dimension_removes_columns(self, small_fleet):
        corrupted = MissingDimension("W").apply(small_fleet, np.random.default_rng(0))
        assert not any(c in corrupted.columns for c in W_COLUMNS)

    def test_out_of_order_breaks_sorting(self, small_fleet):
        corrupted = OutOfOrder(fraction=0.5).apply(small_fleet, np.random.default_rng(0))
        assert any("not sorted" in v for v in validate_dataset(corrupted))

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError, match="unknown dimension"):
            MissingDimension("X")


class TestStreamForm:
    def _readings(self):
        return [
            (1, day, {"s1_critical_warning": 0.0, "w161_fs_io_error": 1.0})
            for day in range(20)
        ]

    def test_drop_days_stream(self):
        out = inject_stream(self._readings(), [DropDays(fraction=0.5)], seed=0)
        assert 0 < len(out) < 20

    def test_missing_dimension_stream(self):
        out = inject_stream(self._readings(), [MissingDimension("W")], seed=0)
        assert all("w161_fs_io_error" not in r for _, _, r in out)

    def test_out_of_order_stream(self):
        out = inject_stream(self._readings(), [OutOfOrder(fraction=1.0)], seed=0)
        days = [day for _, day, _ in out]
        assert days != sorted(days)

    def test_stream_determinism(self):
        injectors = [DropDays(0.3), DuplicateRows(0.3), OutOfOrder(0.5)]
        first = inject_stream(self._readings(), injectors, seed=4)
        second = inject_stream(self._readings(), injectors, seed=4)
        assert first == second

    def test_counter_reset_has_no_stream_form(self):
        with pytest.raises(NotImplementedError):
            CounterReset().apply_stream([], np.random.default_rng(0))


class TestRegistry:
    def test_registry_covers_all(self):
        assert set(FAULT_REGISTRY) == {
            "drop_days",
            "duplicate_rows",
            "stuck_sensor",
            "counter_reset",
            "missing_dimension",
            "out_of_order",
        }

    def test_make_fault(self):
        fault = make_fault("drop_days", fraction=0.3)
        assert isinstance(fault, DropDays)
        assert fault.fraction == 0.3

    def test_make_fault_unknown(self):
        with pytest.raises(ValueError, match="unknown fault"):
            make_fault("gamma_rays")
