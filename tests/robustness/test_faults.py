"""Unit tests for the chaos fault injectors."""

import numpy as np
import pytest

from repro.robustness.faults import (
    FAULT_REGISTRY,
    CounterReset,
    DropDays,
    DuplicateRows,
    MissingDimension,
    OutOfOrder,
    StuckSensor,
    inject,
    inject_stream,
    make_fault,
)
from repro.telemetry.dataset import W_COLUMNS
from repro.telemetry.validation import validate_dataset

ALL_INJECTORS = [
    DropDays(),
    DuplicateRows(),
    StuckSensor(),
    CounterReset(),
    MissingDimension("W"),
    OutOfOrder(),
]


def _columns_equal(a, b):
    if set(a.columns) != set(b.columns):
        return False
    for name, values in a.columns.items():
        other = b.columns[name]
        if values.dtype == object:
            if values.tolist() != other.tolist():
                return False
        elif not np.array_equal(values, other, equal_nan=True):
            return False
    return True


class TestDeterminism:
    @pytest.mark.parametrize("injector", ALL_INJECTORS, ids=lambda i: i.name)
    def test_same_seed_same_corruption(self, small_fleet, injector):
        first = inject(small_fleet, [injector], seed=9)
        second = inject(small_fleet, [injector], seed=9)
        assert _columns_equal(first, second)

    def test_input_not_mutated(self, small_fleet):
        before = {k: v.copy() for k, v in small_fleet.columns.items()}
        inject(small_fleet, ALL_INJECTORS, seed=1)
        assert _columns_equal(
            small_fleet,
            type(small_fleet)(before, small_fleet.drives, small_fleet.tickets),
        )


class TestEachFaultBreaksItsInvariant:
    def test_drop_days_removes_rows(self, small_fleet):
        corrupted = DropDays(fraction=0.2).apply(small_fleet, np.random.default_rng(0))
        assert corrupted.n_records < small_fleet.n_records

    def test_duplicate_rows_flagged(self, small_fleet):
        corrupted = DuplicateRows(fraction=0.1).apply(
            small_fleet, np.random.default_rng(0)
        )
        assert any("duplicate" in v for v in validate_dataset(corrupted))

    def test_stuck_sensor_injects_nonfinite(self, small_fleet):
        corrupted = StuckSensor(
            column="s2_temperature", drive_fraction=1.0, nan_fraction=0.5
        ).apply(small_fleet, np.random.default_rng(0))
        assert any("non-finite" in v for v in validate_dataset(corrupted))

    def test_counter_reset_breaks_monotonicity(self, small_fleet):
        corrupted = CounterReset(
            column="s12_power_on_hours", drive_fraction=1.0
        ).apply(small_fleet, np.random.default_rng(0))
        assert any("decreases" in v for v in validate_dataset(corrupted))

    def test_missing_dimension_removes_columns(self, small_fleet):
        corrupted = MissingDimension("W").apply(small_fleet, np.random.default_rng(0))
        assert not any(c in corrupted.columns for c in W_COLUMNS)

    def test_out_of_order_breaks_sorting(self, small_fleet):
        corrupted = OutOfOrder(fraction=0.5).apply(small_fleet, np.random.default_rng(0))
        assert any("not sorted" in v for v in validate_dataset(corrupted))

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValueError, match="unknown dimension"):
            MissingDimension("X")


class TestStreamForm:
    def _readings(self):
        return [
            (1, day, {"s1_critical_warning": 0.0, "w161_fs_io_error": 1.0})
            for day in range(20)
        ]

    def test_drop_days_stream(self):
        out = inject_stream(self._readings(), [DropDays(fraction=0.5)], seed=0)
        assert 0 < len(out) < 20

    def test_missing_dimension_stream(self):
        out = inject_stream(self._readings(), [MissingDimension("W")], seed=0)
        assert all("w161_fs_io_error" not in r for _, _, r in out)

    def test_out_of_order_stream(self):
        out = inject_stream(self._readings(), [OutOfOrder(fraction=1.0)], seed=0)
        days = [day for _, day, _ in out]
        assert days != sorted(days)

    def test_stream_determinism(self):
        injectors = [DropDays(0.3), DuplicateRows(0.3), OutOfOrder(0.5)]
        first = inject_stream(self._readings(), injectors, seed=4)
        second = inject_stream(self._readings(), injectors, seed=4)
        assert first == second

    def _monotone_readings(self):
        return [
            (1, day, {"s12_power_on_hours": float(24 * (day + 1))})
            for day in range(20)
        ]

    def test_counter_reset_stream_breaks_monotonicity(self):
        out = inject_stream(
            self._monotone_readings(),
            [CounterReset(column="s12_power_on_hours", drive_fraction=1.0)],
            seed=0,
        )
        values = [r["s12_power_on_hours"] for _, _, r in out]
        assert any(b < a for a, b in zip(values, values[1:]))
        assert all(v >= 0 for v in values)

    def test_counter_reset_stream_skips_short_drives(self):
        single = [(1, 0, {"s12_power_on_hours": 24.0})]
        out = inject_stream(
            single,
            [CounterReset(column="s12_power_on_hours", drive_fraction=1.0)],
            seed=0,
        )
        assert out == single

    def test_input_stream_not_mutated(self):
        readings = self._monotone_readings()
        snapshot = [(s, d, dict(r)) for s, d, r in readings]
        inject_stream(
            readings,
            [CounterReset(column="s12_power_on_hours", drive_fraction=1.0),
             StuckSensor(column="s12_power_on_hours", drive_fraction=1.0)],
            seed=3,
        )
        assert readings == snapshot


class TestStreamDeterminismAllInjectors:
    """Satellite: same seed ⇒ byte-identical corrupted stream, per injector."""

    def _readings(self):
        rows = []
        for serial in (1, 2, 3):
            for day in range(30):
                rows.append(
                    (serial, day, {
                        "s1_critical_warning": 0.0,
                        "s2_temperature": 40.0 + day,
                        "s12_power_on_hours": float(24 * (day + 1)),
                        "w161_fs_io_error": float(day % 2),
                        "firmware": "FW1",
                    })
                )
        return rows

    @pytest.mark.parametrize("name", sorted(FAULT_REGISTRY))
    def test_same_seed_same_stream(self, name):
        injector = make_fault(name)
        first = inject_stream(self._readings(), [injector], seed=11)
        second = inject_stream(self._readings(), [injector], seed=11)
        assert first == second

    @pytest.mark.parametrize("name", sorted(FAULT_REGISTRY))
    def test_different_seed_may_differ_but_stays_valid(self, name):
        injector = make_fault(name)
        out = inject_stream(self._readings(), [injector], seed=12)
        assert all(isinstance(r, dict) for _, _, r in out)


class TestAuditCounters:
    """Satellite: ``faults_injected_total`` increments once per injector
    application — including applications that are no-ops on the data."""

    @pytest.fixture(autouse=True)
    def clean_registry(self):
        from repro.obs import get_registry

        get_registry().reset()
        yield
        get_registry().reset()

    def _count(self, fault: str) -> float:
        from repro.obs import get_registry

        for family in get_registry().dump():
            if family["name"] == "faults_injected_total":
                for sample in family["samples"]:
                    if sample["labels"].get("fault") == fault:
                        return sample["value"]
        return 0.0

    def test_counts_once_per_injector_per_call(self):
        readings = [(1, d, {"s2_temperature": 40.0}) for d in range(5)]
        inject_stream(readings, [DropDays(0.5), DropDays(0.5)], seed=0)
        assert self._count("drop_days") == 2.0

    def test_counts_noop_applications(self):
        # an empty stream corrupts nothing, but the application is
        # still auditable — the counter must move anyway
        inject_stream([], [DuplicateRows(0.5)], seed=0)
        assert self._count("duplicate_rows") == 1.0

    def test_counts_noop_missing_dimension(self):
        # readings without any W column: removing W changes nothing
        readings = [(1, d, {"s2_temperature": 40.0}) for d in range(5)]
        out = inject_stream(readings, [MissingDimension("W")], seed=0)
        assert [r for _, _, r in out] == [r for _, _, r in readings]
        assert self._count("missing_dimension") == 1.0

    def test_dataset_inject_counts_too(self, small_fleet):
        inject(small_fleet, [DropDays(0.1), OutOfOrder(0.1)], seed=0)
        assert self._count("drop_days") == 1.0
        assert self._count("out_of_order") == 1.0


class TestRegistry:
    def test_registry_covers_all(self):
        assert set(FAULT_REGISTRY) == {
            "drop_days",
            "duplicate_rows",
            "stuck_sensor",
            "counter_reset",
            "missing_dimension",
            "out_of_order",
        }

    def test_make_fault(self):
        fault = make_fault("drop_days", fraction=0.3)
        assert isinstance(fault, DropDays)
        assert fault.fraction == 0.3

    def test_make_fault_unknown(self):
        with pytest.raises(ValueError, match="unknown fault"):
            make_fault("gamma_rays")
