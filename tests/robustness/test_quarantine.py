"""Unit tests for quarantine ingestion (sanitize_dataset)."""

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.robustness.faults import (
    CounterReset,
    DropDays,
    DuplicateRows,
    MissingDimension,
    OutOfOrder,
    StuckSensor,
    inject,
)
from repro.robustness.quarantine import (
    QuarantinePolicy,
    sanitize_dataset,
)
from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.tickets import TroubleTicket
from repro.telemetry.validation import validate_dataset

EVERY_INJECTOR = [
    DropDays(fraction=0.05),
    DuplicateRows(fraction=0.05),
    StuckSensor(column="s2_temperature", drive_fraction=0.3, nan_fraction=0.2),
    CounterReset(column="s12_power_on_hours", drive_fraction=0.3),
    MissingDimension("W"),
    OutOfOrder(fraction=0.1),
]


class TestAcceptance:
    """The PR's acceptance criterion: sanitize survives every injector."""

    @pytest.fixture(scope="class")
    def sanitized(self, small_fleet):
        corrupted = inject(small_fleet, EVERY_INJECTOR, seed=11)
        return sanitize_dataset(corrupted)

    def test_zero_violations_after_sanitize(self, sanitized):
        clean, report = sanitized
        assert validate_dataset(clean) == []
        assert not report.clean  # the corruption was actually seen

    def test_mfpa_fits_on_sanitized(self, sanitized):
        clean, _ = sanitized
        model = MFPA(MFPAConfig())
        model.fit(clean, train_end_day=240)
        assert model.evaluate(240, 360).drive_report.tpr > 0.0

    def test_clean_dataset_passes_through(self, small_fleet):
        clean, report = sanitize_dataset(small_fleet)
        assert report.clean
        assert report.n_input_rows == report.n_output_rows == small_fleet.n_records
        assert validate_dataset(clean) == []


class TestRules:
    def test_duplicates_keep_first(self, small_fleet):
        corrupted = inject(small_fleet, [DuplicateRows(fraction=0.2)], seed=0)
        clean, report = sanitize_dataset(corrupted)
        assert clean.n_records == small_fleet.n_records
        assert report.rules["duplicate_rows"].n_dropped == (
            corrupted.n_records - small_fleet.n_records
        )

    def test_nonfinite_drop_vs_repair(self, small_fleet):
        corrupted = inject(
            small_fleet,
            [StuckSensor(column="s2_temperature", drive_fraction=1.0, nan_fraction=0.5)],
            seed=0,
        )
        dropped, drop_report = sanitize_dataset(corrupted)
        assert dropped.n_records < corrupted.n_records
        assert drop_report.rules["nonfinite"].n_dropped > 0

        repaired, repair_report = sanitize_dataset(
            corrupted, QuarantinePolicy(nonfinite="repair")
        )
        assert repaired.n_records == corrupted.n_records
        assert repair_report.rules["nonfinite"].n_repaired > 0
        assert validate_dataset(repaired) == []

    def test_counter_reset_repair_restores_monotonicity(self, small_fleet):
        corrupted = inject(
            small_fleet, [CounterReset(column="s12_power_on_hours", drive_fraction=1.0)], seed=0
        )
        clean, report = sanitize_dataset(corrupted)
        assert report.rules["counter_reset"].n_repaired > 0
        assert validate_dataset(clean) == []

    def test_counter_reset_drop_mode(self, small_fleet):
        corrupted = inject(
            small_fleet, [CounterReset(column="s12_power_on_hours", drive_fraction=1.0)], seed=0
        )
        clean, report = sanitize_dataset(
            corrupted, QuarantinePolicy(counter_resets="drop")
        )
        assert report.rules["counter_reset"].n_dropped > 0
        assert validate_dataset(clean) == []

    def test_missing_dimension_zero_filled(self, small_fleet):
        corrupted = inject(small_fleet, [MissingDimension("W")], seed=0)
        clean, report = sanitize_dataset(corrupted)
        assert report.rules["missing_column"].n_repaired > 0
        for column in small_fleet.columns:
            assert column in clean.columns
        assert validate_dataset(clean) == []

    def test_unknown_serial_rows_dropped(self, small_fleet):
        columns = {k: v.copy() for k, v in small_fleet.columns.items()}
        columns["serial"][:7] = 999_999  # no metadata for this serial
        corrupted = TelemetryDataset(columns, dict(small_fleet.drives), list(small_fleet.tickets))
        clean, report = sanitize_dataset(corrupted)
        assert report.rules["unknown_serial"].n_dropped == 7
        assert 999_999 in report.rules["unknown_serial"].serials
        assert validate_dataset(clean) == []

    def test_post_failure_rows_dropped(self, small_fleet):
        failed = int(small_fleet.failed_serials()[0])
        failure_day = small_fleet.drives[failed].failure_day
        columns = {k: v.copy() for k, v in small_fleet.columns.items()}
        rows = np.flatnonzero(columns["serial"] == failed)
        columns["day"][rows[-1]] = failure_day + 50
        corrupted = TelemetryDataset(columns, dict(small_fleet.drives), list(small_fleet.tickets))
        clean, report = sanitize_dataset(corrupted)
        assert report.rules["post_failure_rows"].n_dropped >= 1
        assert failed in report.rules["post_failure_rows"].serials
        assert validate_dataset(clean) == []

    def test_negative_events_clamped(self, small_fleet):
        columns = {k: v.copy() for k, v in small_fleet.columns.items()}
        columns["w161_fs_io_error"][:10] = -3.0
        corrupted = TelemetryDataset(columns, dict(small_fleet.drives), list(small_fleet.tickets))
        clean, report = sanitize_dataset(corrupted)
        assert report.rules["negative_events"].n_repaired == 10
        assert np.all(clean.columns["w161_fs_io_error"] >= 0)
        # preprocess (which rejects negative counts) must accept the output
        MFPA(MFPAConfig()).fit(clean, train_end_day=240)

    def test_ticket_imt_clamped_or_dropped(self, small_fleet):
        assert small_fleet.tickets, "fixture must have tickets"
        tickets = list(small_fleet.tickets)
        bad = tickets[0]
        tickets[0] = TroubleTicket(
            serial=bad.serial,
            initial_maintenance_time=-1,
            failure_level=bad.failure_level,
            category=bad.category,
            cause=bad.cause,
        )
        corrupted = TelemetryDataset(dict(small_fleet.columns), dict(small_fleet.drives), tickets)

        clean, report = sanitize_dataset(corrupted)
        assert report.n_tickets_repaired == 1
        assert validate_dataset(clean) == []

        clean2, report2 = sanitize_dataset(corrupted, QuarantinePolicy(tickets="drop"))
        assert report2.n_tickets_dropped == 1
        assert len(clean2.tickets) == len(tickets) - 1

    def test_orphan_ticket_dropped(self, small_fleet):
        tickets = list(small_fleet.tickets) + [
            TroubleTicket(
                serial=123_456,
                initial_maintenance_time=10,
                failure_level="general",
                category="hardware",
                cause="disk",
            )
        ]
        corrupted = TelemetryDataset(dict(small_fleet.columns), dict(small_fleet.drives), tickets)
        clean, report = sanitize_dataset(corrupted)
        assert report.n_tickets_dropped == 1
        assert validate_dataset(clean) == []


class TestReport:
    def test_summary_mentions_triggered_rules(self, small_fleet):
        corrupted = inject(small_fleet, [DuplicateRows(fraction=0.2)], seed=0)
        _, report = sanitize_dataset(corrupted)
        assert "duplicate_rows" in report.summary()
        assert report.affected_serials()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="repair"):
            QuarantinePolicy(nonfinite="ignore")

    def test_input_not_mutated(self, small_fleet):
        corrupted = inject(small_fleet, EVERY_INJECTOR, seed=2)
        before = {k: v.copy() for k, v in corrupted.columns.items()}
        sanitize_dataset(corrupted)
        for name, values in corrupted.columns.items():
            if values.dtype == object:
                assert values.tolist() == before[name].tolist()
            else:
                np.testing.assert_array_equal(values, before[name], err_msg=name)
