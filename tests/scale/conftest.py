"""Shared fixtures for the out-of-core (scale) tests.

The sharded fixtures reuse the session-scoped ``small_fleet`` so the
suite pays for one fleet simulation; the shard store is written once
per session and treated read-only.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MFPAConfig
from repro.ml.forest import RandomForestClassifier
from repro.scale import write_dataset_sharded


def cheap_config(**overrides) -> MFPAConfig:
    """A fast MFPA config (small forest) for parity tests."""
    return MFPAConfig(
        algorithm=RandomForestClassifier(n_estimators=8, max_depth=6, seed=0),
        **overrides,
    )


@pytest.fixture(scope="session")
def shard_store(small_fleet, tmp_path_factory):
    """The small fleet written as a 3-shard store (read-only)."""
    root = tmp_path_factory.mktemp("scale-store") / "store"
    return write_dataset_sharded(small_fleet, root, n_shards=3)
