"""CLI wiring of the out-of-core subsystem.

``simulate --shards`` writes a shard store, ``scale inspect`` prints
its manifest, and ``train``/``monitor`` autodetect shard-store
arguments and route to the streaming implementations.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.scale import ShardedDataset, is_shard_store


@pytest.fixture(scope="module")
def cli_store(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-scale") / "store"
    code = main(
        [
            "simulate", str(path),
            "--shards", "3",
            "--vendor", "I=60", "--vendor", "II=40",
            "--horizon-days", "300",
            "--failure-boost", "30",
            "--seed", "3",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_simulate_shards_flag(self):
        args = build_parser().parse_args(["simulate", "out", "--shards", "8"])
        assert args.shards == 8
        assert build_parser().parse_args(["simulate", "out"]).shards is None

    def test_memory_ceiling_flag(self):
        for command in ("train", "monitor"):
            args = build_parser().parse_args(
                [command, "d", "--memory-ceiling-mb", "512"]
            )
            assert args.memory_ceiling_mb == 512
            assert (
                build_parser().parse_args([command, "d"]).memory_ceiling_mb
                is None
            )

    def test_scale_inspect_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scale"])
        args = build_parser().parse_args(["scale", "inspect", "dir"])
        assert args.scale_command == "inspect"
        assert args.store == "dir"


class TestSimulateShards:
    def test_writes_a_valid_store(self, cli_store):
        assert is_shard_store(cli_store)
        store = ShardedDataset(cli_store)
        assert store.n_shards == 3
        assert store.n_drives == 100


class TestInspect:
    def test_prints_manifest_summary(self, cli_store, capsys):
        code = main(["scale", "inspect", str(cli_store)])
        assert code == 0
        out = capsys.readouterr().out
        store = ShardedDataset(cli_store)
        assert "3 shards" in out
        assert store.fleet_fingerprint in out
        for info in store.shards:
            assert info.filename in out


class TestShardedTrain:
    def test_routes_to_streaming_trainer(self, cli_store, capsys):
        code = main(
            [
                "train", str(cli_store),
                "--train-end-day", "180",
                "--eval-end-day", "300",
                "--memory-ceiling-mb", "8192",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trained through day 180" in out
        assert "drive" in out and "record" in out


class TestShardedMonitor:
    def test_routes_to_sharded_monitor(self, cli_store, capsys):
        code = main(
            [
                "monitor", str(cli_store),
                "--start-day", "150",
                "--end-day", "300",
                "--window-days", "50",
                "--memory-ceiling-mb", "8192",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Monitored operation" in out
        assert "150-200" in out

    def test_allow_degraded_rejected_on_stores(self, cli_store):
        with pytest.raises(SystemExit, match="not supported"):
            main(
                [
                    "monitor", str(cli_store),
                    "--allow-degraded",
                ]
            )

    def test_checkpointing_flags_accepted_on_stores(
        self, cli_store, tmp_path, capsys
    ):
        checkpoint = tmp_path / "ckpt"
        arguments = [
            "monitor", str(cli_store),
            "--start-day", "150",
            "--end-day", "300",
            "--window-days", "50",
            "--checkpoint-dir", str(checkpoint),
        ]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert (checkpoint / "progress.pkl").exists()
        # A resumed run restores the committed progress and reprints
        # the identical summary.
        assert main([*arguments, "--resume"]) == 0
        assert capsys.readouterr().out == first
