"""Generator-based telemetry: shard-layout independence and bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.dataset import TelemetryDataset
from repro.telemetry.fleet import FleetConfig, SSDFleet, VendorMix

CONFIG = FleetConfig(
    mix=VendorMix({"I": 25, "III": 15}),
    horizon_days=120,
    failure_boost=30.0,
    seed=9,
)


def _concat(shards):
    return TelemetryDataset.concat(list(shards))


class TestLayoutIndependence:
    def test_shard_count_does_not_change_telemetry(self):
        fleet = SSDFleet(CONFIG)
        whole = _concat(fleet.generate_shards(n_shards=1))
        split = _concat(fleet.generate_shards(n_shards=4))
        for name, values in whole.columns.items():
            np.testing.assert_array_equal(split.columns[name], values)
        assert split.drives == whole.drives

    def test_drives_per_shard_equivalent(self):
        fleet = SSDFleet(CONFIG)
        by_count = _concat(fleet.generate_shards(n_shards=5))
        by_size = _concat(fleet.generate_shards(drives_per_shard=7))
        for name, values in by_count.columns.items():
            np.testing.assert_array_equal(by_size.columns[name], values)

    def test_single_drive_stream_matches(self):
        fleet = SSDFleet(CONFIG)
        whole = _concat(fleet.generate_shards(n_shards=1))
        history, _ = fleet.simulate_drive(3)
        rows = whole.columns["serial"] == 3
        np.testing.assert_array_equal(
            whole.columns["day"][rows], history.observed_days
        )


class TestShardBounds:
    def test_bounds_cover_every_serial_once(self):
        fleet = SSDFleet(CONFIG)
        bounds = fleet.shard_bounds(n_shards=4)
        assert bounds[0][0] == 1
        assert bounds[-1][1] == fleet.n_drives
        for (_, last), (first, _) in zip(bounds, bounds[1:]):
            assert first == last + 1

    def test_exactly_one_sizing_argument(self):
        fleet = SSDFleet(CONFIG)
        with pytest.raises(ValueError, match="exactly one"):
            fleet.shard_bounds()
        with pytest.raises(ValueError, match="exactly one"):
            fleet.shard_bounds(n_shards=2, drives_per_shard=3)

    def test_invalid_sizes_rejected(self):
        fleet = SSDFleet(CONFIG)
        with pytest.raises(ValueError):
            fleet.shard_bounds(n_shards=0)
        with pytest.raises(ValueError):
            fleet.shard_bounds(n_shards=fleet.n_drives + 1)
        with pytest.raises(ValueError):
            fleet.shard_bounds(drives_per_shard=0)

    def test_vendor_major_serial_assignment(self):
        fleet = SSDFleet(CONFIG)
        whole = _concat(fleet.generate_shards(n_shards=2))
        vendors = [whole.drives[s].vendor for s in sorted(whole.drives)]
        # Vendor blocks are contiguous in serial order.
        assert vendors == sorted(vendors, key=vendors.index)
