"""Peak-RSS tracking and memory-ceiling enforcement."""

from __future__ import annotations

import pytest

from repro.obs import get_registry
from repro.scale import (
    MemoryCeiling,
    MemoryCeilingExceeded,
    peak_rss_mb,
    update_peak_rss_gauge,
)

pytestmark = pytest.mark.smoke


def test_peak_rss_is_positive_and_monotone():
    first = peak_rss_mb()
    assert first > 0
    assert peak_rss_mb() >= first


def test_gauge_reflects_peak():
    update_peak_rss_gauge()
    gauge = get_registry().gauge("scale_peak_rss_mb").value
    assert gauge == pytest.approx(peak_rss_mb(), rel=0.05)


class TestCeiling:
    def test_unlimited_ceiling_never_raises(self):
        MemoryCeiling(None).check("anywhere")

    def test_generous_ceiling_passes(self):
        MemoryCeiling(1 << 20).check("plenty")

    def test_breach_raises_with_phase_and_counts(self):
        ceiling = MemoryCeiling(1)  # 1 MiB: any real process is over
        before = get_registry().counter(
            "scale_memory_ceiling_exceeded_total"
        ).value
        with pytest.raises(MemoryCeilingExceeded) as excinfo:
            ceiling.check("tests.breach")
        assert excinfo.value.phase == "tests.breach"
        assert excinfo.value.peak_mb > excinfo.value.ceiling_mb
        assert "tests.breach" in str(excinfo.value)
        after = get_registry().counter(
            "scale_memory_ceiling_exceeded_total"
        ).value
        assert after == before + 1

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            MemoryCeiling(0)
        with pytest.raises(ValueError):
            MemoryCeiling(-5)
