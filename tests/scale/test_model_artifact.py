"""Artifact-backed boundary models in the sharded monitor.

``_save_models`` persists every unique window model as a versioned
``repro.ml.artifact`` directory (``models/boundary_<k>/``) instead of
pickling it — and with ``monitor.pkl`` inline. Resume loads those
artifacts back with zero refits, and ``use_model`` adopts an
artifact-loaded pipeline as the initial model so the first window is
scored without a single ``fit()``.
"""

from __future__ import annotations

import pytest

import repro.core.pipeline as pipeline_mod
from repro.core.deployment import RetrainPolicy, simulate_operation
from repro.core.pipeline import MFPA
from repro.ml.artifact import load_model, save_model
from repro.scale import ShardedFleetMonitor

from tests.scale.conftest import cheap_config
from tests.scale.test_monitor_checkpoint import assert_summaries_equal

START, END, WINDOW = 240, 360, 40
POLICY = RetrainPolicy(interval_days=60, min_new_failures=1)


def _monitor(shard_store) -> ShardedFleetMonitor:
    return ShardedFleetMonitor(
        shard_store,
        config=cheap_config(feature_group_name="SFWB"),
        policy=POLICY,
    )


@pytest.fixture()
def count_estimator_fits(monkeypatch):
    calls = {"n": 0}
    original = pipeline_mod.MFPA._fit_estimator

    def counting(self, X, labels, days):
        calls["n"] += 1
        return original(self, X, labels, days)

    monkeypatch.setattr(pipeline_mod.MFPA, "_fit_estimator", counting)
    return calls


def test_boundary_models_are_artifacts(shard_store, tmp_path):
    directory = tmp_path / "ckpt"
    _monitor(shard_store).run(START, END, window_days=WINDOW,
                              checkpoint_dir=directory)
    boundaries = sorted(p.name for p in (directory / "models").iterdir())
    assert boundaries  # at least the initial model
    for name in boundaries:
        assert (directory / "models" / name / "manifest.json").exists()
        loaded = load_model(directory / "models" / name)
        assert isinstance(loaded, MFPA)


def test_resume_loads_artifacts_without_refit(
    shard_store, tmp_path, count_estimator_fits
):
    directory = tmp_path / "ckpt"
    baseline = _monitor(shard_store).run(
        START, END, window_days=WINDOW, checkpoint_dir=directory
    )
    fits_before = count_estimator_fits["n"]
    resumed = _monitor(shard_store).run(
        START, END, window_days=WINDOW, checkpoint_dir=directory, resume=True
    )
    assert count_estimator_fits["n"] == fits_before  # zero refits
    assert_summaries_equal(resumed, baseline)


def test_use_model_matches_in_ram_monitor(
    shard_store, small_fleet, tmp_path, count_estimator_fits
):
    config = cheap_config(feature_group_name="SFWB")
    model = MFPA(config)
    model.fit(small_fleet, train_end_day=START)
    save_model(model, tmp_path / "artifact", dataset=small_fleet)

    fits_before = count_estimator_fits["n"]
    monitor = _monitor(shard_store)
    monitor.use_model(load_model(tmp_path / "artifact"), START)
    sharded = monitor.run(START, END, window_days=WINDOW)
    # The day-300 scheduled retrain may fit; the *initial* model must not.
    initial_fits = count_estimator_fits["n"] - fits_before
    in_ram = simulate_operation(
        small_fleet,
        config=config,
        policy=POLICY,
        start_day=START,
        end_day=END,
        window_days=WINDOW,
    )
    assert sharded.alarm_records() == in_ram.alarm_records()
    # Only scheduled retrains fit — never the adopted initial model.
    retrains = sum(1 for w in sharded.windows if w.retrained)
    assert initial_fits == retrains
