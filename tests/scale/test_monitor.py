"""Shard-merge equivalence: ``ShardedFleetMonitor`` vs the in-RAM monitor.

The satellite contract: on the Table-V workload (SFWB feature group),
the partitioned monitor's alarms are bit-identical to
``simulate_operation`` on the same fleet, and the merged
``OperationSummary`` matches field by field — at ``n_jobs`` 1 and 4.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import RetrainPolicy, simulate_operation
from repro.scale import ShardedFleetMonitor

from tests.scale.conftest import cheap_config

START, END, WINDOW = 240, 360, 40
POLICY = RetrainPolicy(interval_days=60, min_new_failures=1)


@pytest.fixture(scope="module")
def batch_summary(small_fleet):
    return simulate_operation(
        small_fleet,
        config=cheap_config(feature_group_name="SFWB"),
        policy=POLICY,
        start_day=START,
        end_day=END,
        window_days=WINDOW,
    )


@pytest.mark.parametrize("n_jobs", [1, 4])
def test_sharded_monitor_matches_in_ram(shard_store, batch_summary, n_jobs):
    monitor = ShardedFleetMonitor(
        shard_store,
        config=cheap_config(feature_group_name="SFWB"),
        policy=POLICY,
        n_jobs=n_jobs,
    )
    sharded = monitor.run(START, END, window_days=WINDOW)

    assert sharded.alarm_records() == batch_summary.alarm_records()
    for field in (
        "n_alarms",
        "true_alarms",
        "false_alarms",
        "missed_failures",
        "lead_times",
        "unknown_serial_alarms",
        "precision",
        "recall",
    ):
        got = getattr(sharded, field)
        want = getattr(batch_summary, field)
        assert got == want, (field, got, want)

    assert len(sharded.windows) == len(batch_summary.windows)
    for got_window, want_window in zip(sharded.windows, batch_summary.windows):
        assert got_window.start_day == want_window.start_day
        assert got_window.end_day == want_window.end_day
        assert got_window.n_drives_scored == want_window.n_drives_scored
        assert got_window.retrained == want_window.retrained
        got_alarms = [
            (a.serial, a.day, a.probability) for a in got_window.alarms
        ]
        want_alarms = [
            (a.serial, a.day, a.probability) for a in want_window.alarms
        ]
        assert got_alarms == want_alarms
    assert any(window.retrained for window in sharded.windows)


def test_alarm_threshold_validated(shard_store):
    with pytest.raises(ValueError, match="alarm_threshold"):
        ShardedFleetMonitor(shard_store, alarm_threshold=1.5)
