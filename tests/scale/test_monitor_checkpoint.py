"""Shard-boundary checkpoint/resume for ``ShardedFleetMonitor``.

The contract mirrors the in-RAM monitor's window checkpoints
(``robustness/checkpoint.py``): a run killed between shard boundaries
resumes from its committed progress — no retraining, no rescoring of
completed shards — and the final summary is bit-identical to an
uninterrupted run. The "kill" is the same controlled-crash device the
in-RAM tests use (``max_shards``, mirroring ``max_windows``): stop
after N shards with the checkpoint committed, then start over in a
fresh monitor instance as a crashed process would.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.deployment import RetrainPolicy
from repro.obs import get_registry
from repro.parallel import shutdown_pool
from repro.parallel.calibration import set_serial_fallback_mode
from repro.robustness.checkpoint import CheckpointCorruptError
from repro.scale import ShardedFleetMonitor
from repro.scale.monitor import SHARD_MONITOR_FILES

from tests.scale.conftest import cheap_config

START, END, WINDOW = 240, 360, 40
POLICY = RetrainPolicy(interval_days=60, min_new_failures=1)
N_WINDOWS = 3  # (END - START) / WINDOW


def _monitor(shard_store, n_jobs: int = 1) -> ShardedFleetMonitor:
    return ShardedFleetMonitor(
        shard_store,
        config=cheap_config(feature_group_name="SFWB"),
        policy=POLICY,
        n_jobs=n_jobs,
    )


def _counter(name: str) -> float:
    return get_registry().counter(name).value


def assert_summaries_equal(got, want) -> None:
    assert got.alarm_records() == want.alarm_records()
    for field in (
        "n_alarms", "true_alarms", "false_alarms", "missed_failures",
        "lead_times", "unknown_serial_alarms", "precision", "recall",
    ):
        assert getattr(got, field) == getattr(want, field), field
    assert [
        (w.start_day, w.end_day, w.n_drives_scored, w.retrained)
        for w in got.windows
    ] == [
        (w.start_day, w.end_day, w.n_drives_scored, w.retrained)
        for w in want.windows
    ]


@pytest.fixture(scope="module")
def baseline(shard_store):
    """Uninterrupted, checkpoint-free reference run."""
    return _monitor(shard_store).run(START, END, window_days=WINDOW)


def test_uninterrupted_run_unchanged_by_checkpointing(
    shard_store, baseline, tmp_path
):
    summary = _monitor(shard_store).run(
        START, END, window_days=WINDOW, checkpoint_dir=tmp_path / "ckpt"
    )
    assert_summaries_equal(summary, baseline)
    for name in SHARD_MONITOR_FILES:
        assert (tmp_path / "ckpt" / name).exists()


def test_crash_after_one_shard_resumes_bit_identical(
    shard_store, baseline, tmp_path
):
    checkpoint = tmp_path / "ckpt"
    _monitor(shard_store).run(
        START, END, window_days=WINDOW,
        checkpoint_dir=checkpoint, max_shards=1,
    )

    scored_before = _counter("scale_shards_scored_total")
    retrains_before = _counter("monitor_retrains_total")
    # A fresh instance, as a restarted process would construct it.
    summary = _monitor(shard_store).run(
        START, END, window_days=WINDOW,
        checkpoint_dir=checkpoint, resume=True,
    )
    assert_summaries_equal(summary, baseline)
    # Only the two unfinished shards were scored (N_WINDOWS passes
    # each), and no model was retrained — both came off the checkpoint.
    assert _counter("scale_shards_scored_total") - scored_before == (
        (shard_store.n_shards - 1) * N_WINDOWS
    )
    assert _counter("monitor_retrains_total") - retrains_before == 0


def test_parallel_resume_checkpoints_at_group_boundaries(
    shard_store, baseline, tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_PARALLEL_OVERSUBSCRIBE", "1")
    set_serial_fallback_mode("never")
    try:
        checkpoint = tmp_path / "ckpt"
        _monitor(shard_store, n_jobs=2).run(
            START, END, window_days=WINDOW,
            checkpoint_dir=checkpoint, max_shards=2,
        )
        with open(checkpoint / "progress.pkl", "rb") as handle:
            assert len(pickle.load(handle)["per_shard"]) == 2
        summary = _monitor(shard_store, n_jobs=2).run(
            START, END, window_days=WINDOW,
            checkpoint_dir=checkpoint, resume=True,
        )
    finally:
        set_serial_fallback_mode("auto")
        shutdown_pool()
    assert_summaries_equal(summary, baseline)


def test_resume_rejects_mismatched_run(shard_store, tmp_path):
    checkpoint = tmp_path / "ckpt"
    _monitor(shard_store).run(
        START, END, window_days=WINDOW,
        checkpoint_dir=checkpoint, max_shards=1,
    )
    with pytest.raises(ValueError, match="does not match this run"):
        _monitor(shard_store).run(
            START, END + WINDOW, window_days=WINDOW,
            checkpoint_dir=checkpoint, resume=True,
        )


def test_resume_rejects_corrupt_checkpoint(shard_store, tmp_path):
    checkpoint = tmp_path / "ckpt"
    _monitor(shard_store).run(
        START, END, window_days=WINDOW,
        checkpoint_dir=checkpoint, max_shards=1,
    )
    (checkpoint / "progress.pkl").write_bytes(b"garbage")
    with pytest.raises(CheckpointCorruptError):
        _monitor(shard_store).run(
            START, END, window_days=WINDOW,
            checkpoint_dir=checkpoint, resume=True,
        )


def test_resume_without_checkpoint_starts_fresh(
    shard_store, baseline, tmp_path
):
    summary = _monitor(shard_store).run(
        START, END, window_days=WINDOW,
        checkpoint_dir=tmp_path / "empty", resume=True,
    )
    assert_summaries_equal(summary, baseline)
