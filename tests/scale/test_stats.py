"""Streaming quantile edges and fleet-total report merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preprocess import PreprocessReport
from repro.ml.binning import build_binned
from repro.robustness.quarantine import QuarantineReport
from repro.scale import (
    StreamingQuantiles,
    fit_bin_edges,
    merge_preprocess_reports,
    merge_quarantine_reports,
)

pytestmark = pytest.mark.smoke


def _shards(X: np.ndarray, cuts: list[int]) -> list[np.ndarray]:
    return np.array_split(X, cuts)


class TestStreamingQuantiles:
    def test_lossless_matches_in_ram_binning(self):
        rng = np.random.default_rng(0)
        # Few distinct values per column: the lossless midpoint regime.
        X = rng.integers(0, 20, (600, 3)).astype(float)
        streamed = fit_bin_edges(_shards(X, [150, 400]), ["a", "b", "c"])
        reference = build_binned(X)
        for j in range(3):
            np.testing.assert_allclose(streamed[j], reference.bin_edges[j])

    def test_layout_independent_edges(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (5000, 2))  # high cardinality: subsampled
        a = fit_bin_edges(_shards(X, [1000]), ["x", "y"], max_bins=16)
        b = fit_bin_edges(_shards(X, [300, 2100, 4000]), ["x", "y"], max_bins=16)
        for ea, eb in zip(a, b):
            np.testing.assert_array_equal(ea, eb)

    def test_approximate_edges_bounded_and_sorted(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (4000, 1))
        sketch = StreamingQuantiles(["x"], max_bins=16)
        for shard in _shards(X, [900, 2500]):
            sketch.update(shard)
        assert sketch.is_lossless() == [False]
        (edges,) = sketch.edges()
        assert edges.size <= 15
        assert np.all(np.diff(edges) > 0)
        # Sampled quantiles land within a bin width of the exact ones.
        exact = np.quantile(X[:, 0], np.linspace(0, 1, 17)[1:-1])
        assert np.max(np.abs(edges - exact)) < 0.25

    def test_nan_rows_ignored(self):
        X = np.array([[0.0], [np.nan], [1.0], [2.0], [np.nan]])
        sketch = StreamingQuantiles(["x"])
        sketch.update(X)
        (edges,) = sketch.edges()
        np.testing.assert_allclose(edges, [0.5, 1.5])

    def test_shape_and_parameter_validation(self):
        sketch = StreamingQuantiles(["x", "y"])
        with pytest.raises(ValueError, match="matrix"):
            sketch.update(np.zeros((4, 3)))
        with pytest.raises(ValueError, match="max_bins"):
            StreamingQuantiles(["x"], max_bins=1)
        with pytest.raises(ValueError, match="sample_target"):
            StreamingQuantiles(["x"], max_bins=32, sample_target=8)


class TestReportMerging:
    def test_preprocess_totals_add(self):
        reports = [
            PreprocessReport(
                n_input_rows=100, n_output_rows=90, n_rows_dropped=10,
                n_rows_filled=5, n_drives_dropped=1,
            ),
            PreprocessReport(
                n_input_rows=50, n_output_rows=50, n_rows_dropped=0,
                n_rows_filled=2, n_drives_dropped=0,
            ),
        ]
        merged = merge_preprocess_reports(reports)
        assert merged.n_input_rows == 150
        assert merged.n_output_rows == 140
        assert merged.n_rows_dropped == 10
        assert merged.n_rows_filled == 7
        assert merged.n_drives_dropped == 1

    def test_quarantine_counts_add_and_serials_union(self):
        first = QuarantineReport(n_input_rows=40, n_output_rows=35)
        outcome = first.outcome("stuck_sensor")
        outcome.n_dropped = 5
        outcome.serials |= {1, 2}
        second = QuarantineReport(n_input_rows=60, n_output_rows=58)
        outcome = second.outcome("stuck_sensor")
        outcome.n_repaired = 2
        outcome.serials |= {7}
        second.outcome("counter_reset").n_dropped = 2

        merged = merge_quarantine_reports([first, second])
        assert merged.n_input_rows == 100
        assert merged.n_output_rows == 93
        assert merged.rules["stuck_sensor"].n_dropped == 5
        assert merged.rules["stuck_sensor"].n_repaired == 2
        assert merged.rules["stuck_sensor"].serials == {1, 2, 7}
        assert merged.rules["counter_reset"].n_dropped == 2
        assert merged.n_rows_dropped == 7

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_preprocess_reports([])
        with pytest.raises(ValueError):
            merge_quarantine_reports([])
