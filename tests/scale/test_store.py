"""Shard store roundtrip, manifest integrity, and error paths."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.scale import (
    MANIFEST_NAME,
    ShardManifestError,
    ShardWriter,
    ShardedDataset,
    is_shard_store,
    write_dataset_sharded,
)
from repro.telemetry.dataset import TelemetryDataset


class TestRoundtrip:
    def test_concat_of_shards_equals_original(self, small_fleet, shard_store):
        rebuilt = TelemetryDataset.concat(
            [dataset for _, dataset in shard_store.iter_shards()]
        )
        assert set(rebuilt.columns) == set(small_fleet.columns)
        for name, values in small_fleet.columns.items():
            np.testing.assert_array_equal(rebuilt.columns[name], values)
        assert rebuilt.drives == small_fleet.drives
        assert sorted(rebuilt.tickets, key=lambda t: t.serial) == sorted(
            small_fleet.tickets, key=lambda t: t.serial
        )

    def test_shards_partition_serials_ascending(self, shard_store):
        previous_last = 0
        for info in shard_store.shards:
            assert info.first_serial > previous_last
            assert info.first_serial <= info.last_serial
            previous_last = info.last_serial

    def test_manifest_totals_match(self, small_fleet, shard_store):
        summary = shard_store.summary()
        assert summary["n_shards"] == 3
        assert summary["n_drives"] == small_fleet.n_drives
        assert summary["n_rows"] == small_fleet.n_records
        assert summary["n_bytes"] == sum(
            info.n_bytes for info in shard_store.shards
        )
        assert len(summary["fleet_fingerprint"]) == 16

    def test_verified_load_passes_on_intact_store(self, shard_store):
        _ = shard_store.load_shard(0, verify=True)

    def test_zero_row_drive_meta_survives_sharding(self, small_fleet, tmp_path):
        # A drive can have a meta (and ticket) but no telemetry rows —
        # e.g. quarantined to extinction. Its meta must still land in a
        # shard so grading sees the drive.
        victim = sorted(small_fleet.drives)[0]
        trimmed = small_fleet.select_rows(
            small_fleet.columns["serial"] != victim
        )
        dataset = TelemetryDataset(
            dict(trimmed.columns),
            {**trimmed.drives, victim: small_fleet.drives[victim]},
            list(small_fleet.tickets),
        )
        store = write_dataset_sharded(dataset, tmp_path / "s", n_shards=2)
        rebuilt = TelemetryDataset.concat(
            [shard for _, shard in store.iter_shards()]
        )
        assert victim in rebuilt.drives
        assert rebuilt.drives[victim] == small_fleet.drives[victim]
        assert not np.any(rebuilt.columns["serial"] == victim)


class TestDetection:
    def test_is_shard_store(self, shard_store, tmp_path):
        assert is_shard_store(shard_store.root)
        assert not is_shard_store(tmp_path)
        assert not is_shard_store(tmp_path / "does-not-exist")


class TestErrors:
    def test_missing_manifest_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ShardManifestError):
            ShardedDataset(tmp_path / "empty")

    def test_corrupt_manifest_raises(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ShardManifestError):
            ShardedDataset(root)

    def test_wrong_format_version_raises(self, shard_store, tmp_path):
        root = tmp_path / "future"
        root.mkdir()
        manifest = json.loads(
            (shard_store.root / MANIFEST_NAME).read_text()
        )
        manifest["format_version"] = 999
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ShardManifestError, match="format"):
            ShardedDataset(root)

    def test_verify_detects_bit_rot(self, small_fleet, tmp_path):
        store = write_dataset_sharded(small_fleet, tmp_path / "rot", n_shards=2)
        target = store.root / store.shards[0].filename
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        target.write_bytes(bytes(blob))
        reopened = ShardedDataset(store.root)
        with pytest.raises(ShardManifestError, match="sha256"):
            reopened.load_shard(0, verify=True)

    def test_writer_rejects_out_of_order_shards(self, small_fleet, tmp_path):
        serials = np.asarray(small_fleet.columns["serial"])
        ordered = sorted(small_fleet.drives)
        half = len(ordered) // 2
        low = small_fleet.select_rows(np.isin(serials, ordered[:half]))
        high = small_fleet.select_rows(np.isin(serials, ordered[half:]))
        writer = ShardWriter(tmp_path / "order")
        writer.add_shard(high)
        with pytest.raises(ValueError, match="ascending"):
            writer.add_shard(low)

    def test_empty_store_cannot_commit(self, tmp_path):
        writer = ShardWriter(tmp_path / "void")
        with pytest.raises(ValueError, match="zero shards"):
            writer.close()

    def test_closed_writer_rejects_shards(self, small_fleet, tmp_path):
        writer = ShardWriter(tmp_path / "closed")
        writer.add_shard(small_fleet)
        writer.close()
        with pytest.raises(RuntimeError, match="closed"):
            writer.add_shard(small_fleet)
