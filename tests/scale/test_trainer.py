"""Streaming trainer parity: ``fit_sharded`` vs the in-RAM ``MFPA.fit``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import MFPA
from repro.scale import evaluate_sharded, fit_sharded

from tests.scale.conftest import cheap_config

TRAIN_END = 240
EVAL_END = 360


@pytest.fixture(scope="module")
def fitted_pair(small_fleet, shard_store):
    config = cheap_config()
    in_ram = MFPA(cheap_config()).fit(small_fleet, train_end_day=TRAIN_END)
    sharded = fit_sharded(shard_store, config, train_end_day=TRAIN_END)
    return in_ram, sharded


class TestFitParity:
    def test_failure_times_identical(self, fitted_pair):
        in_ram, sharded = fitted_pair
        assert sharded.failure_times_ == in_ram.failure_times_

    def test_encoder_classes_identical(self, fitted_pair):
        in_ram, sharded = fitted_pair
        np.testing.assert_array_equal(
            sharded.firmware_encoder_.classes_,
            in_ram.firmware_encoder_.classes_,
        )

    def test_preprocess_report_identical(self, fitted_pair):
        in_ram, sharded = fitted_pair
        assert sharded.preprocess_report_ == in_ram.preprocess_report_

    def test_assembler_columns_identical(self, fitted_pair):
        in_ram, sharded = fitted_pair
        assert sharded.assembler_.columns == in_ram.assembler_.columns

    def test_predictions_bit_identical(self, fitted_pair):
        in_ram, sharded = fitted_pair
        rows = np.arange(0, in_ram.dataset_.n_records, 97)
        # The sharded model never holds the fleet; borrow the in-RAM
        # prepared dataset to drive its estimator on identical features.
        sharded.dataset_ = in_ram.dataset_
        try:
            np.testing.assert_array_equal(
                sharded.predict_proba_rows(rows),
                in_ram.predict_proba_rows(rows),
            )
        finally:
            del sharded.dataset_

    def test_dataset_not_materialized(self, fitted_pair):
        _, sharded = fitted_pair
        assert not hasattr(sharded, "dataset_")


class TestEvaluateParity:
    def test_reports_identical(self, fitted_pair, shard_store):
        in_ram, sharded = fitted_pair
        want = in_ram.evaluate(TRAIN_END, EVAL_END)
        got = evaluate_sharded(sharded, shard_store, TRAIN_END, EVAL_END)
        assert got.n_faulty_drives == want.n_faulty_drives
        assert got.n_healthy_drives == want.n_healthy_drives
        for level in ("drive_report", "record_report"):
            for metric in ("tpr", "fpr", "accuracy", "pdr", "auc"):
                got_value = getattr(getattr(got, level), metric)
                want_value = getattr(getattr(want, level), metric)
                assert got_value == want_value or (
                    got_value != got_value and want_value != want_value
                ), (level, metric, got_value, want_value)

    def test_bad_period_rejected(self, fitted_pair, shard_store):
        _, sharded = fitted_pair
        with pytest.raises(ValueError, match="end_day"):
            evaluate_sharded(sharded, shard_store, 300, 300)


def test_train_end_day_required(shard_store):
    with pytest.raises(ValueError, match="train_end_day"):
        fit_sharded(shard_store, cheap_config())
