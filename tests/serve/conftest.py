"""Serve-suite fixtures: one fitted model pair shared across the suite.

Fitting MFPA twice (full + reduced) dominates test cost, so both models
and the replayable reading stream are session-scoped; tests must treat
them as read-only. Daemons are cheap to construct from the fitted pair
(`ServeDaemon.from_models`), so each test builds its own.

Metric assertions need isolation: the registry is process-global, so an
autouse fixture resets it around every test in this package.
"""

from __future__ import annotations

import pytest

from repro.core.deployment import RetrainPolicy, simulate_operation
from repro.core.pipeline import MFPA, MFPAConfig
from repro.obs import get_registry
from repro.robustness.degraded import fit_reduced_model
from repro.serve import ServeConfig, dataset_to_readings
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet

SERVE_START, END, WINDOW = 240, 360, 30

#: The daemon never retrains; parity baselines must not either.
NEVER_RETRAIN = RetrainPolicy(interval_days=10**9, min_new_failures=10**9)


@pytest.fixture(autouse=True)
def clean_metrics():
    get_registry().reset()
    yield
    get_registry().reset()


@pytest.fixture(scope="session")
def serve_fleet():
    return simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 120}),
            horizon_days=420,
            failure_boost=25.0,
            seed=17,
        )
    )


@pytest.fixture(scope="session")
def serve_models(serve_fleet):
    """(full, reduced) MFPA pair trained through SERVE_START."""
    full = MFPA(MFPAConfig())
    full.fit(serve_fleet, train_end_day=SERVE_START)
    reduced = fit_reduced_model(serve_fleet, SERVE_START, base_config=full.config)
    return full, reduced


@pytest.fixture(scope="session")
def serve_readings(serve_fleet):
    """Gap-repaired day-major stream from day 0 through END."""
    return dataset_to_readings(serve_fleet, end_day=END)


@pytest.fixture(scope="session")
def batch_baseline(serve_fleet):
    """The batch monitor's alarms on the same telemetry, no retrains."""
    return simulate_operation(
        serve_fleet,
        policy=NEVER_RETRAIN,
        start_day=SERVE_START,
        end_day=END,
        window_days=WINDOW,
    )


@pytest.fixture()
def serve_config():
    return ServeConfig(
        serve_start_day=SERVE_START, window_days=WINDOW, end_day=END
    )
