"""Alarm stream: lifetime dedup, rate budget, sink emit/reconcile ordering."""

import json

import pytest

from repro.obs import get_registry
from repro.serve.alarms import AlarmStream


def _counter(name: str) -> float:
    for family in get_registry().dump():
        if family["name"] == name:
            for sample in family["samples"]:
                return sample["value"]
    return 0.0


class TestDecide:
    def test_below_threshold_rejected(self):
        stream = AlarmStream(threshold=0.5)
        assert not stream.decide(1, 100, 0.4, window_start=90)
        assert stream.ledger == []

    def test_accepted_alarm_marks_drive(self):
        stream = AlarmStream(threshold=0.5)
        assert stream.decide(1, 100, 0.9, window_start=90)
        assert stream.is_alarmed(1)
        assert stream.ledger[0]["serial"] == 1
        assert stream.ledger[0]["probability"] == 0.9

    def test_lifetime_dedup(self):
        stream = AlarmStream(threshold=0.5)
        assert stream.decide(1, 100, 0.9, window_start=90)
        assert not stream.decide(1, 130, 0.95, window_start=120)
        assert len(stream.ledger) == 1
        assert _counter("serve_alarms_deduped_total") == 1.0

    def test_rate_budget_suppresses_but_allows_realarm(self):
        stream = AlarmStream(threshold=0.5, max_per_window=1)
        assert stream.decide(1, 100, 0.9, window_start=90)
        assert not stream.decide(2, 100, 0.9, window_start=90)
        assert _counter("serve_alarms_suppressed_total") == 1.0
        assert not stream.is_alarmed(2)  # NOT silenced forever
        stream.open_window()  # budget resets at the boundary
        assert stream.decide(2, 130, 0.9, window_start=120)

    def test_degraded_flag_recorded(self):
        stream = AlarmStream(threshold=0.5)
        stream.decide(1, 100, 0.9, window_start=90, degraded=True)
        assert stream.ledger[0]["degraded"] is True


class TestSink:
    def test_emit_appends_committed_records(self, tmp_path):
        sink = tmp_path / "alarms.jsonl"
        stream = AlarmStream(threshold=0.5, sink_path=sink)
        stream.decide(1, 100, 0.9, window_start=90)
        stream.decide(2, 101, 0.8, window_start=90)
        assert stream.emit_pending() == 2
        lines = [json.loads(l) for l in sink.read_text().splitlines()]
        assert [l["serial"] for l in lines] == [1, 2]
        assert _counter("serve_alarms_emitted_total") == 2.0
        # nothing left pending
        assert stream.emit_pending() == 0

    def test_reconcile_rewrites_sink_from_ledger(self, tmp_path):
        sink = tmp_path / "alarms.jsonl"
        # simulate a crash between checkpoint and emit: the sink holds a
        # stale duplicate plus junk that the ledger never recorded
        sink.write_text(
            json.dumps({"serial": 1, "day": 100}) + "\n" + "garbage\n"
        )
        stream = AlarmStream(threshold=0.5, sink_path=sink)
        stream.restore(
            {
                "threshold": 0.5,
                "alarmed": [1],
                "ledger": [
                    {
                        "serial": 1,
                        "day": 100,
                        "probability": 0.9,
                        "window_start": 90,
                        "degraded": False,
                    }
                ],
            }
        )
        stream.reconcile_sink()
        lines = [json.loads(l) for l in sink.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["serial"] == 1
        assert lines[0]["probability"] == 0.9

    def test_no_sink_is_fine(self):
        stream = AlarmStream(threshold=0.5)
        stream.decide(1, 100, 0.9, window_start=90)
        assert stream.emit_pending() == 1
        stream.reconcile_sink()  # no-op


class TestSnapshot:
    def test_roundtrip_drops_pending(self):
        stream = AlarmStream(threshold=0.6, max_per_window=5)
        stream.decide(1, 100, 0.9, window_start=90)
        restored = AlarmStream(threshold=0.1, max_per_window=5)
        restored.restore(stream.snapshot())
        assert restored.threshold == 0.6
        assert restored.is_alarmed(1)
        assert restored.ledger == stream.ledger
        # pending is intentionally not persisted; reconcile covers it
        assert restored.emit_pending() == 0

    def test_restored_stream_still_dedups(self):
        stream = AlarmStream(threshold=0.5)
        stream.decide(1, 100, 0.9, window_start=90)
        restored = AlarmStream(threshold=0.5)
        restored.restore(stream.snapshot())
        assert not restored.decide(1, 130, 0.95, window_start=120)
        assert len(restored.ledger) == 1
