"""Chaos-under-serve: all six injectors at a live daemon, with a hard
kill and resume in the middle — the tentpole acceptance suite.

Per ISSUE invariants, for every fault:

* neither the killed, resumed nor reference run crashes;
* the resumed run's alarm ledger equals the uninterrupted reference —
  zero duplicate and zero lost alarms across the ``kill -9``;
* the sink holds exactly one line per alarmed drive;
* ``missing_dimension`` shows degraded-mode entry in both the window
  summaries and the metrics registry.

The gate's drive-ban threshold is lifted here: ``duplicate_rows`` at
fraction 0.2 produces dozens of stale-day rejections per drive, which
with the default ``quarantine_drive_after=20`` bans the entire fleet
and makes every invariant pass vacuously with zero alarms. Disabling
the ban keeps the alarm path live so resume-dedup is actually tested.
"""

import pytest

from repro.obs import get_registry
from repro.robustness.faults import FAULT_REGISTRY
from repro.serve import GatePolicy, ServeConfig, run_chaos_one

from .conftest import END, SERVE_START, WINDOW

CHAOS_CONFIG = ServeConfig(
    serve_start_day=SERVE_START,
    window_days=WINDOW,
    end_day=END,
    gate=GatePolicy(quarantine_drive_after=None),
)


def _counter(name: str) -> float:
    for family in get_registry().dump():
        if family["name"] == name:
            for sample in family["samples"]:
                return sample["value"]
    return 0.0


@pytest.mark.parametrize("fault", sorted(FAULT_REGISTRY))
def test_fault_survives_kill_and_resume(
    fault, serve_models, serve_readings, tmp_path
):
    full, reduced = serve_models
    report = run_chaos_one(
        full,
        reduced,
        serve_readings,
        fault,
        CHAOS_CONFIG,
        tmp_path,
        end_day=END,
        seed=7,
    )
    assert report.passed, report
    assert report.resume_matches_reference
    assert report.sink_matches_ledger
    assert report.sink_lines == report.sink_unique_serials
    assert report.windows_total == (END - SERVE_START) // WINDOW
    assert _counter("serve_resumes_total") == 1.0

    if fault == "missing_dimension":
        # losing the whole W dimension must visibly degrade scoring
        assert report.degraded_windows > 0
        assert _counter("serve_degraded_entries_total") >= 1.0
    if fault == "duplicate_rows":
        # with banning lifted the alarm path stays live under duplicates
        assert report.n_alarms_resumed > 0
