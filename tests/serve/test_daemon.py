"""ServeDaemon end-to-end: batch parity, kill/resume, degraded routing,
breaker fallback, and typed checkpoint-corruption errors."""

import shutil

import numpy as np
import pytest

from repro.obs import get_registry
from repro.parallel import shutdown_pool
from repro.parallel.calibration import set_serial_fallback_mode
from repro.robustness.checkpoint import CheckpointCorruptError, write_manifest
from repro.serve import SERVE_FILES, ServeConfig, ServeDaemon, replay_into
from repro.serve.retry import RetryPolicy

from .conftest import END, SERVE_START, WINDOW


def _counter(name: str) -> float:
    for family in get_registry().dump():
        if family["name"] == name:
            for sample in family["samples"]:
                return sample["value"]
    return 0.0


def _subset(readings, n_serials):
    keep = set(sorted({r[0] for r in readings})[:n_serials])
    return [r for r in readings if r[0] in keep]


def _feed(daemon, readings, stop_day=None, on_day=None):
    """Submit readings pumping at each day change, like a live collector."""
    current = None
    for serial, day, reading in readings:
        if stop_day is not None and day >= stop_day:
            break
        if current is not None and day != current:
            daemon.pump()
            if on_day is not None:
                on_day(day)
        current = day
        daemon.submit(serial, day, reading)
    daemon.pump()


class TestBatchParity:
    def test_daemon_alarms_match_simulate_operation(
        self, serve_models, serve_readings, batch_baseline, serve_config
    ):
        """On clean input the daemon's alarm stream is the batch
        monitor's: same drives, same days, same probabilities."""
        full, reduced = serve_models
        daemon = ServeDaemon.from_models(full, reduced, serve_config)
        summary = replay_into(daemon, serve_readings, end_day=END)

        daemon_records = daemon.alarm_records()
        batch_records = batch_baseline.alarm_records()
        assert len(daemon_records) > 0, "fixture fleet must produce alarms"
        assert [(s, d) for s, d, _ in daemon_records] == [
            (s, d) for s, d, _ in batch_records
        ]
        np.testing.assert_allclose(
            [p for _, _, p in daemon_records],
            [p for _, _, p in batch_records],
            atol=1e-9,
        )
        assert summary["n_windows"] == (END - SERVE_START) // WINDOW
        assert summary["degraded_windows"] == 0
        assert summary["watermark"] == END

    def test_parallel_scoring_bit_identical_to_serial(
        self, serve_models, serve_readings, monkeypatch
    ):
        """``ServeConfig.n_jobs`` must never change an alarm: the
        parallel path chunks the same matrix through the same fitted
        predictor."""
        monkeypatch.setenv("REPRO_PARALLEL_OVERSUBSCRIBE", "1")
        set_serial_fallback_mode("never")
        full, reduced = serve_models
        readings = _subset(serve_readings, 30)
        try:
            def run(n_jobs):
                config = ServeConfig(
                    serve_start_day=SERVE_START, window_days=WINDOW,
                    end_day=END, n_jobs=n_jobs,
                )
                daemon = ServeDaemon.from_models(full, reduced, config)
                summary = replay_into(daemon, readings, end_day=END)
                return daemon.alarm_records(), summary["windows"]

            serial = run(1)
            assert run(2) == serial
        finally:
            set_serial_fallback_mode("auto")
            shutdown_pool()


class TestKillResume:
    def test_resume_equals_uninterrupted(
        self, serve_models, serve_readings, serve_config, tmp_path
    ):
        full, reduced = serve_models
        readings = _subset(serve_readings, 40)
        kill_day = SERVE_START + WINDOW + 1

        reference = ServeDaemon.from_models(full, reduced, serve_config)
        replay_into(reference, readings, end_day=END)

        sink = tmp_path / "alarms.jsonl"
        killed = ServeDaemon.from_models(
            full, reduced, serve_config,
            checkpoint_dir=tmp_path / "ckpt", sink_path=sink,
        )
        _feed(killed, readings, stop_day=kill_day)
        # hard kill: the daemon is abandoned mid-window, nothing flushed
        assert killed.watermark == SERVE_START + WINDOW

        resumed = ServeDaemon.resume(tmp_path / "ckpt", sink_path=sink)
        assert resumed.watermark == SERVE_START + WINDOW
        assert _counter("serve_resumes_total") == 1.0
        replay_into(
            resumed, readings, end_day=END, min_day=resumed.watermark
        )

        assert resumed.alarm_records() == reference.alarm_records()
        assert resumed.windows == reference.windows
        # exactly one sink line per alarmed drive — no duplicates after
        # the crash, no lost alarms
        lines = sink.read_text().splitlines()
        assert len(lines) == len(resumed.alarms.alarmed)

    def test_resume_is_idempotent_at_end_of_stream(
        self, serve_models, serve_readings, serve_config, tmp_path
    ):
        full, reduced = serve_models
        readings = _subset(serve_readings, 10)
        daemon = ServeDaemon.from_models(
            full, reduced, serve_config, checkpoint_dir=tmp_path / "ckpt"
        )
        replay_into(daemon, readings, end_day=END)

        resumed = ServeDaemon.resume(tmp_path / "ckpt")
        assert resumed.watermark == END
        summary = replay_into(
            resumed, readings, end_day=END, min_day=resumed.watermark
        )
        assert summary["n_windows"] == len(daemon.windows)
        assert resumed.alarm_records() == daemon.alarm_records()


class TestDegradedRouting:
    def test_stale_dimension_enters_and_exits_degraded_mode(
        self, serve_models, serve_readings
    ):
        """W vanishing for a whole window degrades that window's scoring;
        W coming back recovers the next one."""
        full, reduced = serve_models
        readings = [
            (serial, day,
             {k: v for k, v in reading.items() if not k.startswith("w")}
             if SERVE_START <= day < SERVE_START + WINDOW else reading)
            for serial, day, reading in _subset(serve_readings, 25)
            if day < SERVE_START + 2 * WINDOW
        ]
        config = ServeConfig(
            serve_start_day=SERVE_START, window_days=WINDOW,
            end_day=SERVE_START + 2 * WINDOW, stale_after=100,
        )
        daemon = ServeDaemon.from_models(full, reduced, config)
        summary = replay_into(
            daemon, readings, end_day=SERVE_START + 2 * WINDOW
        )
        assert [w["degraded"] for w in summary["windows"]] == [True, False]
        assert _counter("serve_degraded_entries_total") == 1.0
        assert _counter("serve_degraded_exits_total") == 1.0

    def test_no_reduced_model_means_no_degraded_route(
        self, serve_models, serve_readings
    ):
        full, _ = serve_models
        readings = [
            (serial, day,
             {k: v for k, v in reading.items() if not k.startswith("w")})
            for serial, day, reading in _subset(serve_readings, 10)
            if day < SERVE_START + WINDOW
        ]
        config = ServeConfig(
            serve_start_day=SERVE_START, window_days=WINDOW,
            end_day=SERVE_START + WINDOW, stale_after=50,
        )
        daemon = ServeDaemon.from_models(full, None, config)
        summary = replay_into(daemon, readings, end_day=SERVE_START + WINDOW)
        # stale W cannot degrade scoring when there is nothing to degrade to
        assert summary["degraded_windows"] == 0


class TestBreakerFallback:
    def test_wedged_full_model_falls_back_then_recovers(
        self, serve_models, serve_readings
    ):
        full, reduced = serve_models
        readings = _subset(serve_readings, 25)
        end = SERVE_START + 2 * WINDOW
        config = ServeConfig(
            serve_start_day=SERVE_START, window_days=WINDOW, end_day=end,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            failure_threshold=1, cooldown_ticks=2,
        )
        daemon = ServeDaemon.from_models(
            full, reduced, config, sleep=lambda seconds: None
        )
        original = daemon.scorer.predict_full
        wedged = {"on": True}

        def flaky(X):
            if wedged["on"]:
                raise OSError("scorer wedged")
            return original(X)

        daemon.scorer.predict_full = flaky
        # heal the scorer partway through the second window, well before
        # its flush — by then the breaker has cooled down to HALF_OPEN
        def on_day(day):
            if day >= SERVE_START + WINDOW + 5:
                wedged["on"] = False

        _feed(daemon, readings, stop_day=end, on_day=on_day)
        summary = daemon.finish(end)

        assert [w["degraded"] for w in summary["windows"]] == [True, False]
        assert _counter("serve_breaker_opens_total") == 1.0
        assert _counter("serve_stage_retries_total") >= 1.0
        assert daemon.alarm_records()  # the reduced route still alarms


class TestCheckpointErrors:
    @pytest.fixture(scope="class")
    def committed_checkpoint(
        self, tmp_path_factory, serve_models, serve_readings
    ):
        """One window flushed and checkpointed, with a tiny drive subset."""
        full, reduced = serve_models
        path = tmp_path_factory.mktemp("serve-ckpt") / "ckpt"
        config = ServeConfig(
            serve_start_day=SERVE_START, window_days=WINDOW,
            end_day=SERVE_START + WINDOW,
        )
        daemon = ServeDaemon.from_models(
            full, reduced, config, checkpoint_dir=path
        )
        readings = [
            r for r in _subset(serve_readings, 5)
            if r[1] < SERVE_START + WINDOW
        ]
        replay_into(daemon, readings, end_day=SERVE_START + WINDOW)
        assert daemon.watermark == SERVE_START + WINDOW
        return path

    def _copy(self, committed_checkpoint, tmp_path):
        target = tmp_path / "ckpt"
        shutil.copytree(committed_checkpoint, target)
        return target

    def test_missing_checkpoint_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ServeDaemon.resume(tmp_path / "nowhere")

    def test_truncated_model_raises_typed_error(
        self, committed_checkpoint, tmp_path
    ):
        path = self._copy(committed_checkpoint, tmp_path)
        payload = (path / "model.pkl").read_bytes()
        (path / "model.pkl").write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            ServeDaemon.resume(path)

    def test_garbage_state_raises_typed_error(
        self, committed_checkpoint, tmp_path
    ):
        path = self._copy(committed_checkpoint, tmp_path)
        (path / "state.json").write_text("not json {{{")
        # recommit the manifest so the JSON parse (not the sha256 check)
        # is what trips
        write_manifest(path, SERVE_FILES)
        with pytest.raises(CheckpointCorruptError, match="JSON"):
            ServeDaemon.resume(path)

    def test_unknown_version_rejected(self, committed_checkpoint, tmp_path):
        import json

        path = self._copy(committed_checkpoint, tmp_path)
        state = json.loads((path / "state.json").read_text())
        state["version"] = 999
        (path / "state.json").write_text(json.dumps(state))
        write_manifest(path, SERVE_FILES)
        with pytest.raises(ValueError, match="version"):
            ServeDaemon.resume(path)

    def test_bitflip_detected_by_manifest(
        self, committed_checkpoint, tmp_path
    ):
        path = self._copy(committed_checkpoint, tmp_path)
        payload = bytearray((path / "model.pkl").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (path / "model.pkl").write_bytes(bytes(payload))
        with pytest.raises(CheckpointCorruptError, match="sha256"):
            ServeDaemon.resume(path)
