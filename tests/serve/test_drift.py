"""Tests for the serve-side drift plane (`repro.serve.drift`).

The load-bearing property is *bit-identity*: a PSI the daemon computes
live against its :class:`ReferenceProfile` must equal, to the last bit,
what the offline :func:`repro.core.drift.population_stability_index`
computes on the same two samples — both halves run the same code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift import (
    population_stability_index,
    psi_against_reference,
    reference_bins,
)
from repro.obs import get_registry
from repro.serve.drift import (
    SCORE_FEATURE,
    DriftMonitor,
    ReferenceProfile,
)

pytestmark = pytest.mark.smoke

RNG = np.random.default_rng(11)


def _profile(n_features: int = 3, n_rows: int = 400) -> ReferenceProfile:
    X = RNG.normal(size=(n_rows, n_features))
    scores = RNG.uniform(size=n_rows)
    columns = [f"f{i}" for i in range(n_features)]
    return ReferenceProfile.from_samples(columns, X, scores), X, scores


class TestReferenceBins:
    def test_psi_composition_bit_identical(self):
        expected = RNG.normal(size=500)
        actual = RNG.normal(loc=0.4, size=300)
        edges, share = reference_bins(expected)
        split = psi_against_reference(edges, share, actual)
        composed = population_stability_index(expected, actual)
        assert split == composed  # exact, not approx

    def test_constant_reference_vs_itself_is_zero(self):
        assert population_stability_index(np.ones(50), np.ones(20)) == 0.0


class TestReferenceProfile:
    def test_feature_psi_matches_offline(self):
        profile, X, _scores = _profile()
        current = RNG.normal(loc=0.8, size=(200, 3))
        for i, column in enumerate(profile.columns):
            live = profile.feature_psi(column, current[:, i])
            offline = population_stability_index(X[:, i], current[:, i])
            assert live == offline

    def test_score_psi_matches_offline(self):
        profile, _X, scores = _profile()
        current = RNG.uniform(size=150) ** 2
        assert profile.score_psi(current) == population_stability_index(
            scores, current
        )

    def test_json_round_trip_preserves_psi_bits(self, tmp_path):
        profile, _X, _scores = _profile()
        current = RNG.normal(loc=1.0, size=(120, 3))
        path = profile.save(tmp_path / "reference_profile.json")
        loaded = ReferenceProfile.load(path)
        assert loaded.columns == profile.columns
        assert loaded.n_reference_rows == profile.n_reference_rows
        for i, column in enumerate(profile.columns):
            assert loaded.feature_psi(column, current[:, i]) == (
                profile.feature_psi(column, current[:, i])
            )

    def test_rejects_column_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            ReferenceProfile.from_samples(["a", "b"], RNG.normal(size=(10, 3)))

    def test_rejects_unknown_version(self):
        profile, _X, _scores = _profile()
        payload = profile.to_json()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            ReferenceProfile.from_json(payload)

    def test_from_model_profiles_training_window(self, serve_models):
        full, _reduced = serve_models
        profile = ReferenceProfile.from_model(full, (0, 240))
        assert profile.columns == tuple(full.assembler_.columns)
        assert profile.n_reference_rows > 0
        # Scoring the training window itself must read as stationary.
        # (Random subsample: a *prefix* of the row order is drive-biased
        # and genuinely drifts on per-drive columns like firmware.)
        day = full.dataset_.columns["day"]
        rows = np.flatnonzero(day < 240)
        rows = np.sort(
            np.random.default_rng(5).choice(rows, size=2000, replace=False)
        )
        assembled = full.assembler_.assemble(full.dataset_.columns, rows)
        current = assembled[:, -len(profile.columns):]
        for i, column in enumerate(profile.columns):
            assert profile.feature_psi(column, current[:, i]) < 0.25


class TestDriftMonitor:
    def test_observe_sets_gauges_per_feature(self):
        profile, X, scores = _profile()
        monitor = DriftMonitor(profile)
        # The reference sample scored against itself: PSI exactly 0.
        report = monitor.observe_window(X, scores, window_start=240)
        registry = get_registry()
        for column in profile.columns:
            gauge = registry.gauge("serve_drift_psi", feature=column)
            assert gauge.value == report["features"][column]
        assert (
            registry.gauge("serve_drift_psi", feature=SCORE_FEATURE).value
            == report["score"]
        )
        assert report["state_name"] == "stable"
        assert registry.gauge("serve_drift_state").value == 0

    def test_severe_shift_fires_budgeted_event(self):
        profile, X, _scores = _profile()
        monitor = DriftMonitor(profile, event_budget_windows=3)
        shifted = X[:150] + 5.0
        registry = get_registry()
        first = monitor.observe_window(shifted, window_start=240)
        assert first["state_name"] == "severe" and first["event"]
        # The next two severe windows are inside the budget: suppressed.
        second = monitor.observe_window(shifted, window_start=270)
        third = monitor.observe_window(shifted, window_start=300)
        assert not second["event"] and not third["event"]
        fourth = monitor.observe_window(shifted, window_start=330)
        assert fourth["event"]
        assert registry.counter("serve_drift_events_total").value == 2
        assert (
            registry.counter("serve_drift_events_suppressed_total").value == 2
        )

    def test_stable_windows_never_fire(self):
        profile, X, scores = _profile()
        monitor = DriftMonitor(profile)
        for start in (240, 270, 300):
            report = monitor.observe_window(X[:80], scores[:80], window_start=start)
            assert not report["event"]
        assert get_registry().counter("serve_drift_events_total").value == 0

    def test_snapshot_restore_preserves_budget_position(self):
        profile, X, _scores = _profile()
        monitor = DriftMonitor(profile, event_budget_windows=3)
        shifted = X[:100] + 5.0
        monitor.observe_window(shifted, window_start=240)  # fires
        monitor.observe_window(shifted, window_start=270)  # suppressed
        snapshot = monitor.snapshot()

        resumed = DriftMonitor(profile, event_budget_windows=3)
        resumed.restore(snapshot)
        assert resumed.last["window_start"] == 270
        report = resumed.observe_window(shifted, window_start=300)
        assert not report["event"]  # still inside the budget
        report = resumed.observe_window(shifted, window_start=330)
        assert report["event"]

    def test_rejects_bad_shapes(self):
        profile, _X, _scores = _profile()
        monitor = DriftMonitor(profile)
        with pytest.raises(ValueError, match="shape"):
            monitor.observe_window(np.zeros((5, 99)))
        with pytest.raises(ValueError, match="empty"):
            monitor.observe_window(np.zeros((0, 3)))

    def test_rejects_bad_budget(self):
        profile, _X, _scores = _profile()
        with pytest.raises(ValueError, match="budget"):
            DriftMonitor(profile, event_budget_windows=0)
