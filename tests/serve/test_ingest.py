"""Ingest gate rules, drive banning and bounded-queue shedding."""

import math

import pytest

from repro.obs import get_registry
from repro.serve.ingest import BoundedReadingQueue, GatePolicy, ReadingGate


def _counter(name: str, **labels) -> float:
    for family in get_registry().dump():
        if family["name"] == name:
            for sample in family["samples"]:
                if all(
                    sample["labels"].get(k) == str(v) for k, v in labels.items()
                ):
                    return sample["value"]
    return 0.0


GOOD = {"s2_temperature": 40.0, "w161_fs_io_error": 1.0, "firmware": "FW1"}


class TestGateRules:
    def test_clean_reading_passes_unchanged(self):
        gate = ReadingGate()
        assert gate.admit(1, 10, GOOD) == GOOD
        assert _counter("serve_readings_ingested_total") == 1.0

    def test_stale_day_rejected(self):
        gate = ReadingGate()
        assert gate.admit(1, 10, GOOD) is not None
        assert gate.admit(1, 10, GOOD) is None  # duplicate
        assert gate.admit(1, 9, GOOD) is None  # out of order
        assert _counter("serve_readings_quarantined_total", rule="stale_day") == 2.0
        assert gate.admit(1, 11, GOOD) is not None

    def test_days_independent_across_drives(self):
        gate = ReadingGate()
        assert gate.admit(1, 10, GOOD) is not None
        assert gate.admit(2, 5, GOOD) is not None

    def test_malformed_rejected(self):
        gate = ReadingGate()
        assert gate.admit("not-a-serial", 1, GOOD) is None
        assert gate.admit(1, 1, "not-a-dict") is None
        assert _counter("serve_readings_quarantined_total", rule="malformed") == 2.0

    def test_non_numeric_value_rejected(self):
        gate = ReadingGate()
        assert gate.admit(1, 1, {**GOOD, "s2_temperature": "hot"}) is None
        assert (
            _counter("serve_readings_quarantined_total", rule="non_numeric") == 1.0
        )

    def test_nonfinite_repair_strips_the_entry(self):
        gate = ReadingGate(GatePolicy(nonfinite="repair"))
        clean = gate.admit(1, 1, {**GOOD, "s2_temperature": math.nan})
        assert clean is not None
        assert "s2_temperature" not in clean
        assert _counter("serve_readings_repaired_total", rule="nonfinite") == 1.0

    def test_nonfinite_drop_rejects_the_reading(self):
        gate = ReadingGate(GatePolicy(nonfinite="drop"))
        assert gate.admit(1, 1, {**GOOD, "s2_temperature": math.inf}) is None
        assert (
            _counter("serve_readings_quarantined_total", rule="nonfinite") == 1.0
        )

    def test_negative_events_clamped(self):
        gate = ReadingGate(GatePolicy(negative_events="repair"))
        clean = gate.admit(1, 1, {**GOOD, "w161_fs_io_error": -3.0})
        assert clean["w161_fs_io_error"] == 0.0
        assert (
            _counter("serve_readings_repaired_total", rule="negative_events")
            == 1.0
        )

    def test_negative_events_drop(self):
        gate = ReadingGate(GatePolicy(negative_events="drop"))
        assert gate.admit(1, 1, {**GOOD, "w161_fs_io_error": -3.0}) is None

    def test_counter_reset_clamped_to_running_max(self):
        gate = ReadingGate(GatePolicy(counter_resets="repair"))
        gate.admit(1, 1, {"s12_power_on_hours": 100.0})
        clean = gate.admit(1, 2, {"s12_power_on_hours": 10.0})
        assert clean["s12_power_on_hours"] == 100.0
        assert (
            _counter("serve_readings_repaired_total", rule="counter_reset")
            == 1.0
        )

    def test_counter_reset_drop(self):
        gate = ReadingGate(GatePolicy(counter_resets="drop"))
        gate.admit(1, 1, {"s12_power_on_hours": 100.0})
        assert gate.admit(1, 2, {"s12_power_on_hours": 10.0}) is None

    def test_running_max_is_per_drive(self):
        gate = ReadingGate()
        gate.admit(1, 1, {"s12_power_on_hours": 100.0})
        clean = gate.admit(2, 1, {"s12_power_on_hours": 10.0})
        assert clean["s12_power_on_hours"] == 10.0

    def test_alarmed_drive_skipped_not_quarantined(self):
        gate = ReadingGate(is_alarmed=lambda serial: serial == 7)
        assert gate.admit(7, 1, GOOD) is None
        assert _counter("serve_readings_skipped_alarmed_total") == 1.0
        assert gate.quarantine_counts == {}

    def test_drive_banned_after_repeated_quarantines(self):
        gate = ReadingGate(GatePolicy(quarantine_drive_after=3))
        gate.admit(1, 5, GOOD)
        for _ in range(3):
            gate.admit(1, 5, GOOD)  # stale duplicates
        assert 1 in gate.banned
        # even a valid reading is now rejected
        assert gate.admit(1, 99, GOOD) is None
        assert (
            _counter("serve_readings_quarantined_total", rule="banned_drive")
            == 1.0
        )

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            GatePolicy(nonfinite="maybe")

    def test_snapshot_roundtrip(self):
        gate = ReadingGate(GatePolicy(quarantine_drive_after=2))
        gate.admit(1, 5, {"s12_power_on_hours": 100.0, **GOOD})
        gate.admit(1, 5, GOOD)
        gate.admit(1, 5, GOOD)  # banned now
        restored = ReadingGate(GatePolicy(quarantine_drive_after=2))
        restored.restore(gate.snapshot())
        assert restored.banned == gate.banned
        assert restored.last_day(1) == 5
        # the restored running max still clamps resets
        clean = restored.admit(2, 1, {"s12_power_on_hours": 10.0})
        assert clean is not None
        # and the restored gate still rejects the banned drive
        assert restored.admit(1, 99, GOOD) is None


class TestBoundedQueue:
    def test_fifo_drain(self):
        queue = BoundedReadingQueue(capacity=10)
        queue.offer(1, 1, GOOD)
        queue.offer(2, 1, GOOD)
        assert [serial for serial, _, _ in queue.drain()] == [1, 2]
        assert len(queue) == 0

    def test_sheds_oldest_when_full(self):
        queue = BoundedReadingQueue(capacity=2)
        queue.offer(1, 1, GOOD)
        queue.offer(2, 1, GOOD)
        queue.offer(3, 1, GOOD)
        assert [serial for serial, _, _ in queue.drain()] == [2, 3]
        assert _counter("serve_readings_shed_total") == 1.0

    def test_sheds_oldest_non_alarmed_first(self):
        queue = BoundedReadingQueue(capacity=2, is_alarmed=lambda s: s == 1)
        queue.offer(1, 1, GOOD)  # alarmed: protected
        queue.offer(2, 1, GOOD)
        queue.offer(3, 1, GOOD)  # sheds serial 2, not serial 1
        assert [serial for serial, _, _ in queue.drain()] == [1, 3]

    def test_all_alarmed_falls_back_to_oldest(self):
        queue = BoundedReadingQueue(capacity=2, is_alarmed=lambda s: True)
        queue.offer(1, 1, GOOD)
        queue.offer(2, 1, GOOD)
        queue.offer(3, 1, GOOD)
        assert [serial for serial, _, _ in queue.drain()] == [2, 3]

    def test_queue_depth_gauge(self):
        queue = BoundedReadingQueue(capacity=10)
        queue.offer(1, 1, GOOD)
        queue.offer(2, 1, GOOD)
        assert _gauge("serve_queue_depth") == 2.0
        queue.drain()
        assert _gauge("serve_queue_depth") == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedReadingQueue(capacity=0)


def _gauge(name: str) -> float:
    for family in get_registry().dump():
        if family["name"] == name:
            for sample in family["samples"]:
                return sample["value"]
    return 0.0
