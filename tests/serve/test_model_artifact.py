"""Serving from a versioned model artifact: fit-free start, hash guard.

``serve --model-artifact`` loads the MFPA bundle (full model, optional
``reduced/`` fallback, bundled ReferenceProfile) and reaches its first
scored window with **zero** ``fit()`` calls. Every checkpoint records
the artifact hash, and ``resume`` refuses — with
:class:`ArtifactMismatchError` — a checkpoint written by a different
model: silently splicing two models' alarm streams is how a fleet ends
up paging on stale thresholds.
"""

from __future__ import annotations

import json

import pytest

import repro.core.pipeline as pipeline_mod
from repro.ml.artifact import (
    ArtifactMismatchError,
    artifact_hash,
    load_model,
    load_reference_profile,
    save_model,
)
from repro.serve.daemon import ServeDaemon
from repro.serve.drift import ReferenceProfile

from tests.serve.conftest import END, SERVE_START


@pytest.fixture(scope="module")
def artifact_dir(serve_models, serve_fleet, tmp_path_factory):
    """The fitted full model saved as an artifact, profile bundled."""
    full, _ = serve_models
    directory = tmp_path_factory.mktemp("serve-artifact") / "model"
    profile = ReferenceProfile.from_model(full, (0, SERVE_START))
    save_model(full, directory, dataset=serve_fleet, reference_profile=profile)
    return directory


def _drain(daemon, readings, end_day=END):
    for serial, day, reading in readings:
        if day < SERVE_START:
            continue
        daemon.submit(serial, day, reading)
        daemon.pump()
    return daemon.finish(end_day)


def test_artifact_serve_is_fit_free_and_alarm_identical(
    artifact_dir, serve_models, serve_config, serve_readings, monkeypatch
):
    full, _ = serve_models
    baseline = _drain(
        ServeDaemon.from_models(full, None, serve_config), serve_readings
    )

    calls = {"n": 0}
    original = pipeline_mod.MFPA.fit

    def counting(self, *args, **kwargs):
        calls["n"] += 1
        return original(self, *args, **kwargs)

    monkeypatch.setattr(pipeline_mod.MFPA, "fit", counting)
    loaded = load_model(artifact_dir)
    daemon = ServeDaemon.from_models(
        loaded, None, serve_config, model_hash=artifact_hash(artifact_dir)
    )
    summary = _drain(daemon, serve_readings)
    assert calls["n"] == 0  # first window (and every window) fit-free
    assert summary["n_windows"] >= 1
    assert summary["n_alarms"] == baseline["n_alarms"]
    assert summary["alarmed_serials"] == baseline["alarmed_serials"]


def test_bundled_profile_enables_drift(artifact_dir, serve_config):
    profile = load_reference_profile(artifact_dir)
    assert profile is not None
    daemon = ServeDaemon.from_models(
        load_model(artifact_dir), None, serve_config, drift=profile
    )
    assert daemon.drift is not None


def test_checkpoint_records_model_hash(
    artifact_dir, serve_config, serve_readings, tmp_path
):
    expected = artifact_hash(artifact_dir)
    daemon = ServeDaemon.from_models(
        load_model(artifact_dir),
        None,
        serve_config,
        checkpoint_dir=tmp_path / "ckpt",
        model_hash=expected,
    )
    _drain(daemon, serve_readings)
    state = json.loads((tmp_path / "ckpt" / "state.json").read_text())
    assert state["model_hash"] == expected

    resumed = ServeDaemon.resume(
        tmp_path / "ckpt", expected_model_hash=expected
    )
    assert resumed.model_hash == expected


def test_resume_refuses_different_model(
    artifact_dir, serve_config, serve_readings, tmp_path
):
    daemon = ServeDaemon.from_models(
        load_model(artifact_dir),
        None,
        serve_config,
        checkpoint_dir=tmp_path / "ckpt",
        model_hash=artifact_hash(artifact_dir),
    )
    _drain(daemon, serve_readings)
    with pytest.raises(ArtifactMismatchError, match="refusing to resume"):
        ServeDaemon.resume(
            tmp_path / "ckpt", expected_model_hash="0" * 16
        )


def test_legacy_checkpoint_resumes_without_expectation(
    serve_models, serve_config, serve_readings, tmp_path
):
    """A checkpoint from a bootstrap-fitted daemon (no artifact, no
    hash) still resumes when the caller states no expectation."""
    full, _ = serve_models
    daemon = ServeDaemon.from_models(
        full, None, serve_config, checkpoint_dir=tmp_path / "ckpt"
    )
    _drain(daemon, serve_readings)
    state = json.loads((tmp_path / "ckpt" / "state.json").read_text())
    assert state["model_hash"] is None
    resumed = ServeDaemon.resume(tmp_path / "ckpt")
    assert resumed.model_hash is None
