"""Daemon ↔ observability-plane integration.

Covers the serve-side acceptance properties of the obs plane:

- `/health` readiness flips under each chaos fault — breaker forced
  open, queue saturated, pump loop gone silent — and recovers.
- `/metrics` stays parser-valid while the daemon is mid-stream.
- Ingest→alarm latency lands in the summary and in the
  ``serve_e2e_latency_seconds`` histogram, one observation per alarm.
- Counters restored from a checkpoint stay monotone across a simulated
  ``kill -9`` (registry wiped, daemon resumed).
- The PSI the daemon reports per window is bit-identical to the offline
  :func:`repro.core.drift.population_stability_index` on the same
  samples.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.drift import population_stability_index
from repro.obs import get_registry
from repro.obs.server import ObsServer
from repro.serve import ServeConfig, ServeDaemon, replay_into
from repro.serve.drift import DriftMonitor, ReferenceProfile
from tests.obs.promparse import validate_exposition

from .conftest import END, SERVE_START, WINDOW
from .test_daemon import _counter, _feed, _subset


def _histogram_count(name: str) -> int:
    for family in get_registry().dump():
        if family["name"] == name:
            return int(family["samples"][0]["count"])
    return 0


class TestHealthChaos:
    """Readiness must flip under each PR-6 chaos fault, then recover."""

    def test_breaker_open_flips_readiness(self, serve_models, serve_config):
        full, reduced = serve_models
        daemon = ServeDaemon.from_models(full, reduced, serve_config)
        assert daemon.health_snapshot()["ready"] is True

        daemon.breaker.force_open()
        health = daemon.health_snapshot()
        assert health["ready"] is False
        assert health["checks"]["breaker"]["ok"] is False
        assert health["checks"]["breaker"]["state"] == "open"
        # The other checks are unaffected by this fault.
        assert health["checks"]["queue"]["ok"] is True
        assert health["checks"]["heartbeat"]["ok"] is True

        # Cooldown ticks walk OPEN → HALF_OPEN, a success closes it.
        for _ in range(serve_config.cooldown_ticks):
            daemon.breaker.tick()
        daemon.breaker.record_success()
        assert daemon.health_snapshot()["ready"] is True

    def test_queue_saturation_flips_readiness(self, serve_models):
        full, reduced = serve_models
        config = ServeConfig(
            serve_start_day=SERVE_START, window_days=WINDOW, end_day=END,
            queue_capacity=4,
        )
        daemon = ServeDaemon.from_models(full, reduced, config)
        for serial in range(4):
            daemon.submit(serial, SERVE_START, {"pow_on_hours": 1.0})
        health = daemon.health_snapshot()
        assert health["ready"] is False
        assert health["checks"]["queue"]["ok"] is False
        assert health["checks"]["queue"]["depth"] == 4

        daemon.pump()  # drains the queue: headroom restored
        assert daemon.health_snapshot()["ready"] is True

    def test_stale_heartbeat_flips_readiness(self, serve_models, serve_config):
        full, reduced = serve_models
        now = [1000.0]
        daemon = ServeDaemon.from_models(
            full, reduced, serve_config, clock=lambda: now[0]
        )
        # Never pumped: a freshly started daemon is still ready.
        assert daemon.health_snapshot()["checks"]["heartbeat"]["ok"] is True

        daemon.pump()
        now[0] += serve_config.heartbeat_timeout_seconds + 1
        health = daemon.health_snapshot()
        assert health["ready"] is False
        assert health["checks"]["heartbeat"]["ok"] is False
        assert health["checks"]["heartbeat"]["age_seconds"] == pytest.approx(
            serve_config.heartbeat_timeout_seconds + 1
        )

        daemon.pump()  # the loop wakes back up
        assert daemon.health_snapshot()["ready"] is True

    def test_health_fault_served_as_503_over_http(
        self, serve_models, serve_config
    ):
        full, reduced = serve_models
        daemon = ServeDaemon.from_models(full, reduced, serve_config)
        with ObsServer(port=0, health_fn=daemon.health_snapshot) as server:
            daemon.breaker.force_open()
            request = urllib.request.Request(server.url + "/health")
            try:
                with urllib.request.urlopen(request, timeout=5) as response:
                    code, body = response.status, response.read()
            except urllib.error.HTTPError as err:
                code, body = err.code, err.read()
            assert code == 503
            assert json.loads(body)["checks"]["breaker"]["ok"] is False

            for _ in range(serve_config.cooldown_ticks):
                daemon.breaker.tick()
            daemon.breaker.record_success()
            with urllib.request.urlopen(request, timeout=5) as response:
                assert response.status == 200
                assert json.loads(response.read())["ready"] is True


class TestEndpointsWhileScoring:
    def test_metrics_parser_valid_and_status_advances_mid_stream(
        self, serve_models, serve_readings, serve_config
    ):
        full, reduced = serve_models
        daemon = ServeDaemon.from_models(full, reduced, serve_config)
        readings = _subset(serve_readings, 20)
        scrapes: list[dict] = []

        with ObsServer(
            port=0,
            status_fn=daemon.status_snapshot,
            health_fn=daemon.health_snapshot,
        ) as server:
            def scrape(day):
                if day % 40 != 0:
                    return
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=5
                ) as response:
                    families = validate_exposition(response.read().decode())
                with urllib.request.urlopen(
                    server.url + "/status", timeout=5
                ) as response:
                    status = json.loads(response.read())
                with urllib.request.urlopen(
                    server.url + "/health", timeout=5
                ) as response:
                    health = json.loads(response.read())
                scrapes.append(
                    {"day": day, "families": families, "status": status,
                     "health": health}
                )

            _feed(daemon, readings, on_day=scrape)
            daemon.finish(END)

        assert len(scrapes) >= 3
        for scrape_record in scrapes:
            assert scrape_record["health"]["alive"] is True
            assert "serve_readings_ingested_total" in scrape_record["families"]
        ingested = [
            s["families"]["serve_readings_ingested_total"].samples[0].value
            for s in scrapes
        ]
        assert ingested == sorted(ingested) and ingested[-1] > ingested[0]
        watermarks = [s["status"]["watermark"] for s in scrapes]
        assert watermarks[-1] > SERVE_START  # windows flushed mid-stream
        assert scrapes[-1]["status"]["metrics"]  # registry summary inlined


class TestLatencyAccounting:
    def test_one_latency_observation_per_alarm(
        self, serve_models, serve_readings, serve_config
    ):
        full, reduced = serve_models
        daemon = ServeDaemon.from_models(full, reduced, serve_config)
        summary = replay_into(daemon, serve_readings, end_day=END)

        latency = summary["e2e_latency_seconds"]
        assert latency["count"] == summary["n_alarms"] > 0
        assert _histogram_count("serve_e2e_latency_seconds") == latency["count"]
        assert 0 <= latency["p50"] <= latency["p95"] <= latency["p99"]
        assert daemon.status_snapshot()["e2e_latency_seconds"] == latency

    def test_no_alarms_reports_empty_percentiles(
        self, serve_models, serve_config
    ):
        full, reduced = serve_models
        daemon = ServeDaemon.from_models(full, reduced, serve_config)
        summary = daemon.finish(SERVE_START + WINDOW)
        assert summary["e2e_latency_seconds"] == {
            "count": 0, "p50": None, "p95": None, "p99": None,
        }


class TestMetricsContinuity:
    def test_counters_monotone_across_simulated_kill(
        self, serve_models, serve_readings, serve_config, tmp_path
    ):
        full, reduced = serve_models
        readings = _subset(serve_readings, 30)
        kill_day = SERVE_START + WINDOW + 1

        daemon = ServeDaemon.from_models(
            full, reduced, serve_config, checkpoint_dir=tmp_path / "ckpt"
        )
        _feed(daemon, readings, stop_day=kill_day)
        assert daemon.watermark == SERVE_START + WINDOW
        at_kill = {
            "windows": _counter("serve_windows_scored_total"),
            "ingested": _counter("serve_readings_ingested_total"),
            "checkpoints": _counter("serve_checkpoints_total"),
        }
        assert at_kill["windows"] == 1.0 and at_kill["ingested"] > 0

        # kill -9: the process dies, taking the in-memory registry with
        # it. The next process starts from zero and resumes.
        get_registry().reset()
        assert _counter("serve_windows_scored_total") == 0.0

        resumed = ServeDaemon.resume(tmp_path / "ckpt")
        assert _counter("serve_windows_scored_total") == at_kill["windows"]
        # Ingests *after* the boundary checkpoint (the day-270 readings
        # fed before the kill) are lost with the process — and re-played
        # on resume, so the restored value is a lower bound, not equal.
        restored_ingested = _counter("serve_readings_ingested_total")
        assert 0 < restored_ingested <= at_kill["ingested"]
        # The snapshot is written before its own commit is counted.
        assert _counter("serve_checkpoints_total") == at_kill["checkpoints"] - 1

        replay_into(resumed, readings, end_day=END, min_day=resumed.watermark)
        assert _counter("serve_windows_scored_total") == float(
            (END - SERVE_START) // WINDOW
        )
        assert _counter("serve_readings_ingested_total") > at_kill["ingested"]
        assert _counter("serve_checkpoints_total") > at_kill["checkpoints"]
        # Gauges are current-truth, not merged history: the drained
        # queue reads 0 even though the checkpoint snapshot said more.
        assert resumed.health_snapshot()["checks"]["queue"]["depth"] == 0


class TestServePsiParity:
    def test_window_psi_bit_identical_to_offline(
        self, serve_models, serve_readings, serve_config
    ):
        """The daemon's per-window PSI must equal, to the last bit, the
        offline ``population_stability_index`` on the same reference
        sample and the same staged window matrix."""
        full, reduced = serve_models
        columns = list(full.assembler_.columns)
        day = full.dataset_.columns["day"]
        rows = np.flatnonzero(day < SERVE_START)[:4000]
        assembled = full.assembler_.assemble(full.dataset_.columns, rows)
        scores_ref = full.model_.predict_proba(assembled)[:, 1]
        X_ref = assembled[:, -len(columns):]
        profile = ReferenceProfile.from_samples(columns, X_ref, scores_ref)

        monitor = DriftMonitor(profile)
        captured: list[tuple[np.ndarray, np.ndarray, dict]] = []
        original = monitor.observe_window

        def spy(X, scores=None, window_start=None):
            report = original(X, scores, window_start=window_start)
            captured.append((np.array(X), np.array(scores), report))
            return report

        monitor.observe_window = spy
        daemon = ServeDaemon.from_models(
            full, reduced, serve_config, drift=monitor
        )
        replay_into(
            daemon, _subset(serve_readings, 30), end_day=END
        )

        assert len(captured) == (END - SERVE_START) // WINDOW
        for X_window, scores_window, report in captured:
            for i, column in enumerate(columns):
                assert report["features"][column] == (
                    population_stability_index(X_ref[:, i], X_window[:, i])
                )
            assert report["score"] == population_stability_index(
                scores_ref, scores_window
            )
        # The live gauges hold the last window's values.
        registry = get_registry()
        last_report = captured[-1][2]
        for column in columns:
            assert (
                registry.gauge("serve_drift_psi", feature=column).value
                == last_report["features"][column]
            )
