"""Stream replay: dataset conversion, JSONL round-trip, pacing/min_day."""

import pytest

from repro.serve.replay import (
    dataset_to_readings,
    iter_stream,
    replay_into,
    write_stream,
)

from .conftest import END


class TestDatasetToReadings:
    def test_day_major_order(self, serve_readings):
        days = [day for _, day, _ in serve_readings]
        assert days == sorted(days)
        # within one day, serials ascend
        by_day = {}
        for serial, day, _ in serve_readings:
            by_day.setdefault(day, []).append(serial)
        for serials in by_day.values():
            assert serials == sorted(serials)

    def test_end_day_is_exclusive(self, serve_readings):
        assert max(day for _, day, _ in serve_readings) == END - 1

    def test_repair_fills_gaps(self, serve_fleet):
        repaired = dataset_to_readings(serve_fleet, end_day=END)
        raw = dataset_to_readings(serve_fleet, end_day=END, repair=False)
        assert len(repaired) >= len(raw)

    def test_readings_are_json_safe(self, serve_readings):
        serial, day, reading = serve_readings[0]
        assert isinstance(serial, int) and isinstance(day, int)
        for key, value in reading.items():
            assert isinstance(value, str if key == "firmware" else float)

    def test_start_day_filters(self, serve_fleet):
        late = dataset_to_readings(serve_fleet, start_day=300, end_day=END)
        assert min(day for _, day, _ in late) >= 300


class TestStreamRoundTrip:
    def test_write_then_iter(self, tmp_path, serve_readings):
        sample = serve_readings[:50]
        path = write_stream(tmp_path / "stream.jsonl", sample, end_day=END)
        events = list(iter_stream(path))
        assert events[-1] == {"kind": "end", "day": END}
        parsed = [
            (e["serial"], e["day"], e["reading"])
            for e in events[:-1]
        ]
        assert all(e["kind"] == "reading" for e in events[:-1])
        assert parsed == sample


class _RecordingDaemon:
    def __init__(self):
        self.submitted = []
        self.pumps = 0

    def submit(self, serial, day, reading):
        self.submitted.append((serial, day))

    def pump(self):
        self.pumps += 1

    def finish(self, end_day=None):
        return {"end_day": end_day}


class TestReplayInto:
    READINGS = [
        (1, 10, {"s2_temperature": 40.0}),
        (2, 10, {"s2_temperature": 41.0}),
        (1, 11, {"s2_temperature": 42.0}),
        (1, 13, {"s2_temperature": 43.0}),
    ]

    def test_pumps_once_per_day_change(self):
        daemon = _RecordingDaemon()
        summary = replay_into(daemon, self.READINGS, end_day=20)
        assert len(daemon.submitted) == 4
        assert daemon.pumps == 2  # 10→11 and 11→13
        assert summary == {"end_day": 20}

    def test_min_day_skips_acknowledged_input(self):
        daemon = _RecordingDaemon()
        replay_into(daemon, self.READINGS, min_day=11)
        assert daemon.submitted == [(1, 11), (1, 13)]

    def test_speed_paces_by_simulated_days(self):
        daemon = _RecordingDaemon()
        slept = []
        replay_into(
            daemon, self.READINGS, speed=10.0, sleep=slept.append
        )
        assert slept == pytest.approx([0.1, 0.2])  # 1 day, then 2 days

    def test_throttle_from_day(self):
        daemon = _RecordingDaemon()
        slept = []
        replay_into(
            daemon,
            self.READINGS,
            throttle_seconds=0.5,
            throttle_from_day=12,
            sleep=slept.append,
        )
        assert slept == [0.5]  # only the 11→13 transition is at/after 12
