"""Retry/backoff policy and circuit-breaker state machine."""

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryExhaustedError,
    RetryPolicy,
    retry_call,
)


def _counter(name: str, **labels) -> float:
    for family in get_registry().dump():
        if family["name"] == name:
            for sample in family["samples"]:
                if all(
                    sample["labels"].get(k) == str(v) for k, v in labels.items()
                ):
                    return sample["value"]
    return 0.0


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)
        self.now += seconds


class TestRetryCall:
    def test_success_first_try(self):
        clock = FakeClock()
        assert retry_call(lambda: 42, sleep=clock.sleep, clock=clock) == 42
        assert clock.slept == []

    def test_retries_then_succeeds(self):
        clock = FakeClock()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("hiccup")
            return "ok"

        result = retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=3, jitter=0.0),
            stage="score",
            sleep=clock.sleep,
            clock=clock,
        )
        assert result == "ok"
        assert len(attempts) == 3
        assert _counter("serve_stage_retries_total", stage="score") == 2.0

    def test_exhaustion_raises_with_cause(self):
        clock = FakeClock()
        with pytest.raises(RetryExhaustedError) as excinfo:
            retry_call(
                lambda: (_ for _ in ()).throw(OSError("down")),
                policy=RetryPolicy(max_attempts=2, jitter=0.0),
                sleep=clock.sleep,
                clock=clock,
            )
        assert isinstance(excinfo.value.__cause__, OSError)
        assert len(clock.slept) == 1  # no sleep after the final attempt

    def test_timeout_budget(self):
        clock = FakeClock()

        def slow_failure():
            clock.now += 10.0
            raise OSError("slow")

        with pytest.raises(RetryExhaustedError, match="budget"):
            retry_call(
                slow_failure,
                policy=RetryPolicy(max_attempts=10, timeout=5.0, jitter=0.0),
                sleep=clock.sleep,
                clock=clock,
            )
        assert _counter("serve_stage_timeouts_total") == 1.0

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay(attempt, rng) for attempt in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.1)
        rng = np.random.default_rng(0)
        for attempt in range(1, 50):
            assert 0.9 <= policy.delay(attempt, rng) <= 1.1


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ticks=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert _counter("serve_breaker_opens_total") == 1.0

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ticks=1)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_to_half_open_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ticks=2)
        breaker.record_failure()
        assert breaker.state == OPEN
        breaker.tick()
        assert breaker.state == OPEN
        breaker.tick()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ticks=1)
        breaker.record_failure()
        breaker.tick()
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        assert _counter("serve_breaker_opens_total") == 2.0

    def test_force_open(self):
        breaker = CircuitBreaker()
        breaker.force_open()
        assert breaker.state == OPEN

    def test_snapshot_roundtrip(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_ticks=4)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        breaker.tick()
        restored = CircuitBreaker(failure_threshold=3, cooldown_ticks=4)
        restored.restore(breaker.snapshot())
        assert restored.state == breaker.state
        # the restored breaker continues the cooldown where it left off
        for _ in range(3):
            restored.tick()
            breaker.tick()
            assert restored.state == breaker.state

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
