"""Incremental scorer state and dimension-freshness staleness detector."""

import numpy as np
import pytest

from repro.core.client import ClientPredictor
from repro.serve.state import DimensionFreshness, IncrementalScorer


@pytest.fixture()
def scorer(serve_models):
    full, reduced = serve_models
    return IncrementalScorer(
        ClientPredictor.from_model(full, on_missing="impute"),
        ClientPredictor.from_model(reduced, on_missing="impute"),
    )


def _readings_for(serve_readings, serial, n):
    picked = [r for r in serve_readings if r[0] == serial][:n]
    assert len(picked) == n
    return picked


class TestIncrementalScorer:
    def test_stage_matches_batch_observe(self, scorer, serve_models, serve_readings):
        """Row assembled incrementally equals ClientPredictor.observe."""
        full, _ = serve_models
        reference = ClientPredictor.from_model(full, on_missing="impute")
        serial = serve_readings[0][0]
        last_row, reference_probability = None, None
        for serial_, day, reading in _readings_for(serve_readings, serial, 10):
            full_row, reduced_row = scorer.stage(serial_, day, reading)
            reference_probability = reference.observe(serial_, day, reading)
            assert reduced_row is not None
            last_row = full_row
        probability = scorer.predict_full(last_row)[0]
        assert probability == pytest.approx(reference_probability, abs=1e-12)

    def test_batched_prediction_matches_per_row(self, scorer, serve_readings):
        serials = sorted({r[0] for r in serve_readings})[:5]
        rows = []
        for serial in serials:
            for serial_, day, reading in _readings_for(serve_readings, serial, 5):
                row, _ = scorer.stage(serial_, day, reading)
            rows.append(row)
        stacked = scorer.predict_full(np.vstack(rows))
        singles = [scorer.predict_full(row)[0] for row in rows]
        np.testing.assert_allclose(stacked, singles, rtol=0, atol=0)

    def test_snapshot_roundtrip_bit_identical(
        self, scorer, serve_models, serve_readings
    ):
        """JSON round-trip of the snapshot reproduces identical scores."""
        import json

        serial = serve_readings[0][0]
        for serial_, day, reading in _readings_for(serve_readings, serial, 8):
            row, _ = scorer.stage(serial_, day, reading)
        snapshot = json.loads(json.dumps(scorer.snapshot()))

        full, reduced = serve_models
        restored = IncrementalScorer(
            ClientPredictor.from_model(full, on_missing="impute"),
            ClientPredictor.from_model(reduced, on_missing="impute"),
        )
        restored.restore(snapshot)
        # continue both scorers with one more reading; rows must match bit-for-bit
        serial_, day, reading = _readings_for(serve_readings, serial, 9)[-1]
        row_a, red_a = scorer.stage(serial_, day, reading)
        row_b, red_b = restored.stage(serial_, day, reading)
        np.testing.assert_array_equal(row_a, row_b)
        np.testing.assert_array_equal(red_a, red_b)
        assert scorer.predict_full(row_a)[0] == restored.predict_full(row_b)[0]

    def test_stage_failure_leaves_state_untouched(self, scorer, serve_readings):
        serial, day, reading = serve_readings[0]
        scorer.stage(serial, day, reading)
        before = scorer.snapshot()
        with pytest.raises((ValueError, KeyError)):
            scorer.stage(serial, day + 1, {**reading, "firmware": "NOT_A_FW"})
        assert scorer.snapshot() == before

    def test_no_reduced_model(self, serve_models, serve_readings):
        full, _ = serve_models
        scorer = IncrementalScorer(
            ClientPredictor.from_model(full, on_missing="impute"), None
        )
        assert not scorer.has_reduced
        serial, day, reading = serve_readings[0]
        row, reduced_row = scorer.stage(serial, day, reading)
        assert reduced_row is None
        with pytest.raises(RuntimeError, match="reduced"):
            scorer.predict_reduced(row)


class TestDimensionFreshness:
    W = {"w161_fs_io_error": 1.0}
    FULL = {
        "s2_temperature": 40.0,
        "w161_fs_io_error": 1.0,
        "b1_unexpected_power_off": 0.0,
        "firmware": "FW1",
    }

    def test_fresh_until_threshold(self):
        freshness = DimensionFreshness(stale_after=3)
        for _ in range(2):
            freshness.observe({"s2_temperature": 40.0})
        assert freshness.stale_dimensions() == ()
        freshness.observe({"s2_temperature": 40.0})
        assert "W" in freshness.stale_dimensions()

    def test_reappearance_resets_streak(self):
        freshness = DimensionFreshness(stale_after=2)
        freshness.observe({"s2_temperature": 40.0})
        freshness.observe(self.FULL)  # W reappears
        freshness.observe({"s2_temperature": 40.0})
        assert "W" not in freshness.stale_dimensions()

    def test_all_dimensions_tracked_independently(self):
        freshness = DimensionFreshness(stale_after=1)
        freshness.observe({"w161_fs_io_error": 1.0})
        stale = freshness.stale_dimensions()
        assert "W" not in stale
        assert "B" in stale and "firmware" in stale

    def test_snapshot_roundtrip(self):
        freshness = DimensionFreshness(stale_after=5)
        for _ in range(3):
            freshness.observe({"s2_temperature": 40.0})
        restored = DimensionFreshness(stale_after=5)
        restored.restore(freshness.snapshot())
        for _ in range(2):
            restored.observe({"s2_temperature": 40.0})
        assert "W" in restored.stale_dimensions()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DimensionFreshness(stale_after=0)
