"""Unit tests for usage patterns and discontinuous collection."""

import numpy as np
import pytest

from repro.telemetry.collection import UsageModel, UsagePattern


def _pattern(**overrides):
    defaults = dict(
        boot_probability=0.6,
        weekend_factor=1.0,
        vacation_rate=0.0,
        mean_vacation_days=7.0,
        mean_daily_hours=6.0,
    )
    defaults.update(overrides)
    return UsagePattern(**defaults)


class TestUsagePattern:
    def test_day_zero_always_observed(self):
        pattern = _pattern(boot_probability=0.05)
        for seed in range(5):
            days, _ = pattern.sample_observed_days(100, np.random.default_rng(seed))
            assert days[0] == 0

    def test_days_strictly_increasing_within_horizon(self):
        pattern = _pattern()
        days, hours = pattern.sample_observed_days(200, np.random.default_rng(0))
        assert np.all(np.diff(days) > 0)
        assert days[-1] < 200
        assert hours.shape == days.shape

    def test_boot_probability_controls_density(self):
        rng = np.random.default_rng(1)
        sparse, _ = _pattern(boot_probability=0.2).sample_observed_days(1000, rng)
        rng = np.random.default_rng(1)
        dense, _ = _pattern(boot_probability=0.9).sample_observed_days(1000, rng)
        assert dense.size > sparse.size

    def test_observed_share_approximates_probability(self):
        pattern = _pattern(boot_probability=0.5)
        days, _ = pattern.sample_observed_days(5000, np.random.default_rng(2))
        assert days.size / 5000 == pytest.approx(0.5, abs=0.05)

    def test_vacations_create_long_gaps(self):
        pattern = _pattern(boot_probability=0.95, vacation_rate=20.0, mean_vacation_days=15.0)
        days, _ = pattern.sample_observed_days(365, np.random.default_rng(3))
        gaps = np.diff(days) - 1
        assert gaps.max() >= 10

    def test_weekend_factor_reduces_weekend_boots(self):
        pattern = _pattern(boot_probability=0.9, weekend_factor=0.1)
        days, _ = pattern.sample_observed_days(7000, np.random.default_rng(4))
        weekend_share = np.mean((days % 7) >= 5)
        assert weekend_share < 2 / 7 * 0.7

    def test_hours_positive_and_bounded(self):
        pattern = _pattern(mean_daily_hours=10.0)
        _, hours = pattern.sample_observed_days(500, np.random.default_rng(5))
        assert np.all(hours > 0)
        assert np.all(hours <= 24)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            _pattern(boot_probability=0.0)
        with pytest.raises(ValueError):
            _pattern(mean_daily_hours=25.0)
        with pytest.raises(ValueError):
            _pattern().sample_observed_days(0, np.random.default_rng(0))


class TestUsageModel:
    def test_sampled_patterns_heterogeneous(self):
        model = UsageModel()
        rng = np.random.default_rng(0)
        probabilities = [model.sample_pattern(rng).boot_probability for _ in range(200)]
        assert np.std(probabilities) > 0.05

    def test_mean_boot_probability_respected(self):
        model = UsageModel(mean_boot_probability=0.4)
        rng = np.random.default_rng(1)
        probabilities = [model.sample_pattern(rng).boot_probability for _ in range(2000)]
        assert np.mean(probabilities) == pytest.approx(0.4, abs=0.05)

    def test_invalid_mean_raises(self):
        with pytest.raises(ValueError):
            UsageModel(mean_boot_probability=0.0)
