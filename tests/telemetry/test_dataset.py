"""Unit tests for the columnar TelemetryDataset."""

import numpy as np
import pytest

from repro.telemetry.dataset import B_COLUMNS, TelemetryDataset, W_COLUMNS
from repro.telemetry.smart import SMART_COLUMNS


class TestAssembly:
    def test_schema_complete(self, small_fleet):
        expected = {"serial", "day", "firmware", "vendor", "model"}
        expected |= set(SMART_COLUMNS) | set(W_COLUMNS) | set(B_COLUMNS)
        assert set(small_fleet.columns) == expected

    def test_sorted_by_serial_then_day(self, small_fleet):
        serial = small_fleet.columns["serial"]
        day = small_fleet.columns["day"]
        order = np.lexsort((day, serial))
        np.testing.assert_array_equal(order, np.arange(serial.size))

    def test_column_lengths_equal(self, small_fleet):
        lengths = {v.shape[0] for v in small_fleet.columns.values()}
        assert len(lengths) == 1

    def test_counts_consistent(self, small_fleet):
        assert small_fleet.n_drives == 200
        assert small_fleet.n_records == small_fleet.columns["day"].size
        assert (
            small_fleet.failed_serials().size + small_fleet.healthy_serials().size
            == small_fleet.n_drives
        )

    def test_tickets_only_for_failed(self, small_fleet):
        failed = set(small_fleet.failed_serials().tolist())
        assert {t.serial for t in small_fleet.tickets} == failed

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            TelemetryDataset(
                {"a": np.ones(3), "b": np.ones(2)}, {}, []
            )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="zero drives"):
            TelemetryDataset.from_drives([], [])


class TestSlicing:
    def test_drive_rows_matches_metadata(self, small_fleet):
        serial = int(small_fleet.serials[0])
        rows = small_fleet.drive_rows(serial)
        assert np.all(rows["serial"] == serial)
        assert np.all(np.diff(rows["day"]) > 0)

    def test_drive_rows_unknown_serial(self, small_fleet):
        with pytest.raises(KeyError):
            small_fleet.drive_rows(10**9)

    def test_faulty_drive_rows_stop_at_failure(self, small_fleet):
        for serial in small_fleet.failed_serials()[:10]:
            meta = small_fleet.drives[int(serial)]
            rows = small_fleet.drive_rows(int(serial))
            assert rows["day"][-1] == meta.failure_day

    def test_filter_vendor(self, mixed_fleet):
        vendor_ii = mixed_fleet.filter_vendor("II")
        assert set(vendor_ii.columns["vendor"]) == {"II"}
        assert all(m.vendor == "II" for m in vendor_ii.drives.values())

    def test_filter_days_window(self, small_fleet):
        window = small_fleet.filter_days(100, 200)
        assert window.columns["day"].min() >= 100
        assert window.columns["day"].max() < 200

    def test_filter_days_restricts_tickets(self, small_fleet):
        window = small_fleet.filter_days(0, 50)
        serials_present = set(np.unique(window.columns["serial"]).tolist())
        assert all(t.serial in serials_present for t in window.tickets)

    def test_select_rows_mask_length_checked(self, small_fleet):
        with pytest.raises(ValueError):
            small_fleet.select_rows(np.ones(3, dtype=bool))

    def test_row_slices_cover_dataset(self, small_fleet):
        slices = small_fleet._row_slices()
        total = sum(s.stop - s.start for s in slices.values())
        assert total == small_fleet.n_records


class TestSummary:
    def test_summary_totals(self, mixed_fleet):
        summary = mixed_fleet.summary()
        assert set(summary) == {"I", "II", "III", "IV"}
        assert sum(int(v["total"]) for v in summary.values()) == mixed_fleet.n_drives

    def test_replacement_rate_definition(self, mixed_fleet):
        summary = mixed_fleet.summary()
        for entry in summary.values():
            assert entry["replacement_rate"] == pytest.approx(
                entry["failures"] / entry["total"]
            )
