"""Unit tests for the single-drive simulator."""

import numpy as np
import pytest

from repro.telemetry.collection import UsagePattern
from repro.telemetry.drive import DRIVE_LEVEL, HEALTHY, SYSTEM_LEVEL, DriveSimulator
from repro.telemetry.firmware import FirmwareLadder
from repro.telemetry.models import drive_models_for_vendor


@pytest.fixture(scope="module")
def simulator():
    return DriveSimulator(horizon_days=200)


@pytest.fixture(scope="module")
def parts():
    model = drive_models_for_vendor("I")[0]
    firmware = FirmwareLadder("I").versions[0]
    pattern = UsagePattern(
        boot_probability=0.8,
        weekend_factor=1.0,
        vacation_rate=0.0,
        mean_vacation_days=7.0,
        mean_daily_hours=6.0,
    )
    return model, firmware, pattern


def _simulate(simulator, parts, failure_day, archetype, seed=0, serial=1):
    model, firmware, pattern = parts
    return simulator.simulate(
        serial=serial,
        model=model,
        firmware=firmware,
        pattern=pattern,
        failure_day=failure_day,
        archetype=archetype,
        rng=np.random.default_rng(seed),
    )


class TestHealthyDrive:
    def test_basic_shape(self, simulator, parts):
        drive = _simulate(simulator, parts, None, HEALTHY)
        assert not drive.failed
        assert drive.n_records == drive.observed_days.size
        assert set(drive.smart) and set(drive.w_daily) and set(drive.b_daily)
        assert np.all(drive.degradation == 0)

    def test_logs_span_horizon(self, simulator, parts):
        drive = _simulate(simulator, parts, None, HEALTHY)
        assert drive.last_observed_day() > 150


class TestFaultyDrive:
    def test_logging_stops_at_failure(self, simulator, parts):
        drive = _simulate(simulator, parts, 120, DRIVE_LEVEL)
        assert drive.failed
        assert drive.last_observed_day() == 120

    def test_failure_day_always_observed(self, simulator, parts):
        for seed in range(5):
            drive = _simulate(simulator, parts, 77, SYSTEM_LEVEL, seed=seed)
            assert 77 in drive.observed_days

    def test_degradation_ramps_to_one(self, simulator, parts):
        drive = _simulate(simulator, parts, 150, DRIVE_LEVEL)
        assert drive.degradation[-1] == pytest.approx(1.0)
        assert drive.degradation[0] == 0.0
        assert np.all(np.diff(drive.degradation) >= 0)

    def test_drive_level_strong_smart_signature(self, simulator, parts):
        drive = _simulate(simulator, parts, 150, DRIVE_LEVEL, seed=1)
        healthy = _simulate(simulator, parts, None, HEALTHY, seed=1)
        assert (
            drive.smart["s14_media_errors"][-1]
            > healthy.smart["s14_media_errors"][-1]
        )

    def test_system_level_strong_event_signature(self, simulator, parts):
        # Average over seeds: a single system-level failure has bursty
        # W/B events; healthy drives essentially none.
        totals_faulty, totals_healthy = 0.0, 0.0
        for seed in range(5):
            faulty = _simulate(simulator, parts, 150, SYSTEM_LEVEL, seed=seed)
            healthy = _simulate(simulator, parts, None, HEALTHY, seed=seed)
            totals_faulty += sum(v.sum() for v in faulty.w_daily.values())
            totals_faulty += sum(v.sum() for v in faulty.b_daily.values())
            totals_healthy += sum(v.sum() for v in healthy.w_daily.values())
            totals_healthy += sum(v.sum() for v in healthy.b_daily.values())
        assert totals_faulty > totals_healthy + 10

    def test_system_level_quieter_smart_than_drive_level(self, simulator, parts):
        smart_faulty = 0.0
        smart_system = 0.0
        for seed in range(5):
            drive_level = _simulate(simulator, parts, 150, DRIVE_LEVEL, seed=seed)
            system_level = _simulate(simulator, parts, 150, SYSTEM_LEVEL, seed=seed + 100)
            smart_faulty += drive_level.smart["s14_media_errors"][-1]
            smart_system += system_level.smart["s14_media_errors"][-1]
        assert smart_system < smart_faulty


class TestValidation:
    def test_archetype_failure_day_consistency(self, simulator, parts):
        with pytest.raises(ValueError, match="iff"):
            _simulate(simulator, parts, None, DRIVE_LEVEL)
        with pytest.raises(ValueError, match="iff"):
            _simulate(simulator, parts, 100, HEALTHY)

    def test_unknown_archetype(self, simulator, parts):
        with pytest.raises(ValueError, match="archetype"):
            _simulate(simulator, parts, 100, "exploded")

    def test_failure_day_outside_horizon(self, simulator, parts):
        with pytest.raises(ValueError, match="horizon"):
            _simulate(simulator, parts, 500, DRIVE_LEVEL)

    def test_invalid_degradation_range(self):
        with pytest.raises(ValueError):
            DriveSimulator(degradation_min_days=10, degradation_max_days=5)

    def test_deterministic_given_rng(self, simulator, parts):
        a = _simulate(simulator, parts, 150, DRIVE_LEVEL, seed=9)
        b = _simulate(simulator, parts, 150, DRIVE_LEVEL, seed=9)
        np.testing.assert_array_equal(a.observed_days, b.observed_days)
        np.testing.assert_array_equal(
            a.smart["s14_media_errors"], b.smart["s14_media_errors"]
        )
