"""Unit tests for event catalogs (W and B) and their sampling process."""

import numpy as np
import pytest

from repro.telemetry.bsod import BSOD_CODES, B_50_COLUMN, B_7A_COLUMN, BsodCatalog
from repro.telemetry.events import EventCatalog, EventType
from repro.telemetry.windows_events import (
    MODEL_W_COLUMNS,
    WINDOWS_EVENTS,
    WindowsEventCatalog,
)


class TestCatalogStructure:
    def test_nine_windows_events(self):
        assert len(WINDOWS_EVENTS) == 9
        assert len(WindowsEventCatalog()) == 9

    def test_twentythree_bsod_codes(self):
        # Table V counts the B group as 23 features.
        assert len(BSOD_CODES) == 23
        assert len(BsodCatalog()) == 23

    def test_model_w_subset_is_five(self):
        assert len(MODEL_W_COLUMNS) == 5
        catalog_columns = {event.column for event in WINDOWS_EVENTS}
        assert set(MODEL_W_COLUMNS) <= catalog_columns

    def test_paper_highlighted_events_have_high_gain(self):
        # W_11, W_49, W_51, W_161 and B_50, B_7A need "special attention".
        catalog = WindowsEventCatalog()
        for event_id in ("W_11", "W_49", "W_51", "W_161"):
            assert catalog.by_id(event_id).failure_gain >= 0.5, event_id
        bsod = BsodCatalog()
        assert bsod.by_id("B_50").failure_gain >= 1.0
        assert bsod.by_id("B_7A").failure_gain >= 1.0

    def test_inaccessible_boot_device_documented_addition(self):
        # Our 23rd stop code (Table IV prints only 22).
        codes = {event.event_id for event in BSOD_CODES}
        assert "B_7B" in codes

    def test_by_id_unknown_raises(self):
        with pytest.raises(KeyError):
            WindowsEventCatalog().by_id("W_999")

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            EventCatalog(())

    def test_unique_columns(self):
        for catalog in (WindowsEventCatalog(), BsodCatalog()):
            columns = [event.column for event in catalog.events]
            assert len(columns) == len(set(columns))


class TestSampling:
    def test_counts_shape_and_dtype(self):
        catalog = WindowsEventCatalog()
        rng = np.random.default_rng(0)
        counts = catalog.sample_daily_counts(np.zeros(30), 0.0, rng)
        assert set(counts) == set(catalog.columns)
        assert all(v.shape == (30,) for v in counts.values())
        assert all(np.all(v >= 0) for v in counts.values())

    def test_healthy_drives_rare_events(self):
        catalog = BsodCatalog()
        rng = np.random.default_rng(1)
        counts = catalog.sample_daily_counts(np.zeros(365), 0.0, rng)
        total = sum(v.sum() for v in counts.values())
        # Expected < ~3 blue screens per healthy machine-year.
        assert total < 15

    def test_degrading_drives_burst(self):
        catalog = WindowsEventCatalog()
        degradation = np.concatenate([np.zeros(40), np.linspace(0, 1, 20)])
        rng = np.random.default_rng(2)
        counts = catalog.sample_daily_counts(degradation, 1.3, rng)
        informative = counts["w161_fs_io_error"]
        assert informative[40:].sum() > informative[:40].sum()

    def test_event_gain_scales_bursts(self):
        catalog = WindowsEventCatalog()
        degradation = np.linspace(0, 1, 50)
        weak = catalog.sample_daily_counts(degradation, 0.2, np.random.default_rng(3))
        strong = catalog.sample_daily_counts(degradation, 2.0, np.random.default_rng(3))
        assert (
            sum(v.sum() for v in strong.values())
            > sum(v.sum() for v in weak.values())
        )

    def test_cumulative_helper(self):
        catalog = WindowsEventCatalog()
        rng = np.random.default_rng(4)
        daily = catalog.sample_daily_counts(np.linspace(0, 1, 20), 1.0, rng)
        cumulative = catalog.cumulative(daily)
        for column in catalog.columns:
            np.testing.assert_allclose(cumulative[column], np.cumsum(daily[column]))
            assert np.all(np.diff(cumulative[column]) >= 0)

    def test_uninformative_events_stay_quiet(self):
        # Events with ~zero failure_gain should not respond to degradation.
        quiet = EventType("Q", "quiet", "q_col", background_rate=0.001, failure_gain=0.0)
        catalog = EventCatalog((quiet,))
        rng = np.random.default_rng(5)
        counts = catalog.sample_daily_counts(np.ones(1000), 2.0, rng)
        assert counts["q_col"].sum() < 10
