"""Unit tests for firmware ladders (Observation #2 / Fig 3)."""

import numpy as np
import pytest

from repro.telemetry.firmware import FirmwareLadder, default_ladders


class TestFirmwareLadder:
    def test_ladder_lengths_from_catalog(self):
        assert len(FirmwareLadder("I")) == 5
        assert len(FirmwareLadder("II")) == 3
        assert len(FirmwareLadder("III")) == 2
        assert len(FirmwareLadder("IV")) == 2

    def test_naming_scheme(self):
        ladder = FirmwareLadder("I")
        assert [v.name for v in ladder.versions][:2] == ["I_F_1", "I_F_2"]

    def test_hazard_decreases_with_version(self):
        for vendor, ladder in default_ladders().items():
            multipliers = [v.hazard_multiplier for v in ladder.versions]
            assert all(a > b for a, b in zip(multipliers, multipliers[1:])), vendor

    def test_newest_version_approaches_baseline(self):
        ladder = FirmwareLadder("I", first_multiplier=4.0, decay=0.5)
        assert ladder.versions[-1].hazard_multiplier < 1.3
        assert ladder.versions[-1].hazard_multiplier > 1.0

    def test_assignment_probabilities_sum_to_one(self):
        probabilities = FirmwareLadder("I").assignment_probabilities()
        assert probabilities.sum() == pytest.approx(1.0)

    def test_older_versions_dominate_population(self):
        probabilities = FirmwareLadder("I").assignment_probabilities()
        assert np.all(np.diff(probabilities) < 0)

    def test_sample_distribution(self):
        ladder = FirmwareLadder("II")
        rng = np.random.default_rng(0)
        assignments = ladder.sample(5000, rng)
        share_oldest = np.mean([v.index == 1 for v in assignments])
        expected = ladder.assignment_probabilities()[0]
        assert share_oldest == pytest.approx(expected, abs=0.03)

    def test_by_name_lookup(self):
        ladder = FirmwareLadder("III")
        assert ladder.by_name("III_F_2").index == 2
        with pytest.raises(KeyError):
            ladder.by_name("III_F_9")

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            FirmwareLadder("X")
        with pytest.raises(ValueError):
            FirmwareLadder("I", first_multiplier=0.5)
        with pytest.raises(ValueError):
            FirmwareLadder("I", decay=1.5)

    def test_vendor_i_worst_early_firmware(self):
        # Vendor I's I_F_1/I_F_2 are singled out by the paper.
        ladders = default_ladders()
        worst_i = ladders["I"].versions[0].hazard_multiplier
        for vendor in ("II", "III", "IV"):
            assert worst_i > ladders[vendor].versions[0].hazard_multiplier
