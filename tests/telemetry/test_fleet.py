"""Unit tests for fleet-level simulation."""

import numpy as np
import pytest

from repro.telemetry.fleet import FleetConfig, VendorMix, simulate_fleet


class TestVendorMix:
    def test_proportional_shares(self):
        mix = VendorMix.proportional(10000)
        assert mix.counts["II"] > mix.counts["III"] > mix.counts["I"] > mix.counts["IV"]
        assert mix.total == pytest.approx(10000, abs=10)

    def test_uniform(self):
        mix = VendorMix.uniform(50)
        assert all(count == 50 for count in mix.counts.values())

    def test_unknown_vendor_rejected(self):
        with pytest.raises(ValueError):
            VendorMix({"Z": 10})

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            VendorMix({"I": -1})

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            VendorMix({"I": 0})


class TestFleetConfig:
    def test_defaults_valid(self):
        config = FleetConfig()
        assert config.horizon_days == 540

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            FleetConfig(horizon_days=5)

    def test_invalid_boost(self):
        with pytest.raises(ValueError):
            FleetConfig(failure_boost=0.0)


class TestSimulation:
    def test_reproducible_from_seed(self):
        config = FleetConfig(
            mix=VendorMix({"I": 30}), horizon_days=120, failure_boost=20.0, seed=11
        )
        a = simulate_fleet(config)
        b = simulate_fleet(config)
        np.testing.assert_array_equal(a.columns["day"], b.columns["day"])
        np.testing.assert_array_equal(
            a.columns["s14_media_errors"], b.columns["s14_media_errors"]
        )
        assert [t.serial for t in a.tickets] == [t.serial for t in b.tickets]

    def test_different_seeds_differ(self):
        base = dict(mix=VendorMix({"I": 30}), horizon_days=120, failure_boost=20.0)
        a = simulate_fleet(FleetConfig(seed=1, **base))
        b = simulate_fleet(FleetConfig(seed=2, **base))
        assert a.n_records != b.n_records or not np.array_equal(
            a.columns["day"], b.columns["day"]
        )

    def test_failure_boost_scales_failures(self):
        base = dict(mix=VendorMix({"I": 150}), horizon_days=180, seed=3)
        low = simulate_fleet(FleetConfig(failure_boost=5.0, **base))
        high = simulate_fleet(FleetConfig(failure_boost=40.0, **base))
        assert len(high.tickets) > len(low.tickets)

    def test_vendor_ordering_preserved(self, mixed_fleet):
        # Relative replacement rates: I highest (uniform mix, boost).
        summary = mixed_fleet.summary()
        assert summary["I"]["replacement_rate"] == max(
            entry["replacement_rate"] for entry in summary.values()
        )

    def test_serials_unique_across_vendors(self, mixed_fleet):
        serials = mixed_fleet.serials
        assert np.unique(serials).size == serials.size

    def test_every_drive_has_records(self, mixed_fleet):
        for serial in mixed_fleet.serials[:50]:
            assert mixed_fleet.drive_rows(int(serial))["day"].size > 0

    def test_archetype_mix_present(self, small_fleet):
        archetypes = {m.archetype for m in small_fleet.drives.values() if m.failed}
        assert archetypes == {"drive_level", "system_level"}

    def test_enterprise_duty_cycle_continuous(self):
        """boot probability ~1 + no vacations approximates 24/7 telemetry
        (the enterprise contrast of the §II challenges)."""
        import numpy as np

        enterprise = simulate_fleet(
            FleetConfig(
                mix=VendorMix({"I": 40}),
                horizon_days=150,
                failure_boost=5.0,
                mean_boot_probability=0.985,
                vacation_rate=0.0,
                seed=77,
            )
        )
        consumer = simulate_fleet(
            FleetConfig(
                mix=VendorMix({"I": 40}),
                horizon_days=150,
                failure_boost=5.0,
                seed=77,
            )
        )

        def max_gap(dataset):
            gaps = []
            for serial in dataset.healthy_serials():
                days = dataset.drive_rows(int(serial))["day"]
                if days.size > 1:
                    gaps.append(int(np.max(np.diff(days) - 1)))
            return np.mean(gaps)

        assert max_gap(enterprise) < max_gap(consumer)
