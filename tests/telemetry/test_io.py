"""Unit tests for dataset persistence (save/load roundtrip)."""

import json

import numpy as np
import pytest

from repro.telemetry.io import FORMAT_VERSION, load_dataset, save_dataset


class TestRoundtrip:
    def test_columns_identical(self, small_fleet, tmp_path):
        save_dataset(small_fleet, tmp_path / "fleet")
        loaded = load_dataset(tmp_path / "fleet")
        assert set(loaded.columns) == set(small_fleet.columns)
        for name, values in small_fleet.columns.items():
            if values.dtype == object:
                assert loaded.columns[name].tolist() == values.tolist()
            else:
                np.testing.assert_array_equal(loaded.columns[name], values)

    def test_drive_metadata_identical(self, small_fleet, tmp_path):
        save_dataset(small_fleet, tmp_path / "fleet")
        loaded = load_dataset(tmp_path / "fleet")
        assert set(loaded.drives) == set(small_fleet.drives)
        for serial, meta in small_fleet.drives.items():
            assert loaded.drives[serial] == meta

    def test_tickets_identical(self, small_fleet, tmp_path):
        save_dataset(small_fleet, tmp_path / "fleet")
        loaded = load_dataset(tmp_path / "fleet")
        assert loaded.tickets == small_fleet.tickets

    def test_loaded_dataset_trains(self, small_fleet, tmp_path):
        from repro.core import MFPA, MFPAConfig

        save_dataset(small_fleet, tmp_path / "fleet")
        loaded = load_dataset(tmp_path / "fleet")
        model = MFPA(MFPAConfig())
        model.fit(loaded, train_end_day=240)
        report = model.evaluate(240, 360).drive_report
        assert report.tpr > 0.5


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")

    def test_version_check(self, small_fleet, tmp_path):
        path = save_dataset(small_fleet, tmp_path / "fleet")
        strings = json.loads((path / "strings.json").read_text())
        strings["version"] = FORMAT_VERSION + 999
        (path / "strings.json").write_text(json.dumps(strings))
        with pytest.raises(ValueError, match="format version"):
            load_dataset(path)

    def test_save_creates_nested_directories(self, small_fleet, tmp_path):
        path = save_dataset(small_fleet, tmp_path / "a" / "b" / "fleet")
        assert (path / "columns.npz").exists()


class TestValidateOnLoad:
    def test_clean_roundtrip_validates(self, small_fleet, tmp_path):
        path = save_dataset(small_fleet, tmp_path / "fleet")
        loaded = load_dataset(path, validate=True)
        assert loaded.n_records == small_fleet.n_records

    def test_corrupted_file_raises_clean_error(self, small_fleet, tmp_path):
        """Persistence no longer trusts directory contents blindly."""
        path = save_dataset(small_fleet, tmp_path / "fleet")
        drives = json.loads((path / "drives.json").read_text())
        dropped = drives.pop(0)  # rows for this serial now lack metadata
        (path / "drives.json").write_text(json.dumps(drives))

        loaded = load_dataset(path)  # default: still trusting
        assert dropped["serial"] not in loaded.drives

        with pytest.raises(ValueError, match="fails validation"):
            load_dataset(path, validate=True)

    def test_sanitize_on_load_repairs(self, small_fleet, tmp_path):
        path = save_dataset(small_fleet, tmp_path / "fleet")
        drives = json.loads((path / "drives.json").read_text())
        removed = drives.pop(0)
        (path / "drives.json").write_text(json.dumps(drives))

        loaded = load_dataset(path, sanitize=True, validate=True)
        assert removed["serial"] not in loaded.drives
        assert loaded.n_records < small_fleet.n_records


class TestConcatRelabel:
    def test_relabel_shifts_everything(self, small_fleet):
        shifted = small_fleet.relabel_serials(10_000)
        assert set(shifted.drives) == {s + 10_000 for s in small_fleet.drives}
        np.testing.assert_array_equal(
            shifted.columns["serial"], small_fleet.columns["serial"] + 10_000
        )
        assert all(t.serial > 10_000 for t in shifted.tickets)

    def test_relabel_zero_is_identity(self, small_fleet):
        assert small_fleet.relabel_serials(0) is small_fleet

    def test_concat_merges(self, small_fleet, mixed_fleet):
        shifted = mixed_fleet.relabel_serials(1_000_000)
        from repro.telemetry.dataset import TelemetryDataset

        merged = TelemetryDataset.concat([small_fleet, shifted])
        assert merged.n_drives == small_fleet.n_drives + mixed_fleet.n_drives
        assert merged.n_records == small_fleet.n_records + mixed_fleet.n_records
        # Sort order maintained for drive_rows to work.
        serial = merged.columns["serial"]
        day = merged.columns["day"]
        order = np.lexsort((day, serial))
        np.testing.assert_array_equal(order, np.arange(serial.size))

    def test_concat_rejects_collisions(self, small_fleet):
        from repro.telemetry.dataset import TelemetryDataset

        with pytest.raises(ValueError, match="collision"):
            TelemetryDataset.concat([small_fleet, small_fleet])

    def test_concat_empty_rejected(self):
        from repro.telemetry.dataset import TelemetryDataset

        with pytest.raises(ValueError):
            TelemetryDataset.concat([])
