"""Unit tests for the bathtub lifetime model (Observation #1 / Fig 2)."""

import numpy as np
import pytest

from repro.telemetry.lifetime import BathtubLifetimeModel


class TestCalibration:
    def test_failure_probability_hits_target(self):
        model = BathtubLifetimeModel(horizon_days=360, target_failure_probability=0.1)
        assert model.failure_probability() == pytest.approx(0.1, rel=1e-6)

    def test_multiplier_scales_probability(self):
        model = BathtubLifetimeModel(horizon_days=360, target_failure_probability=0.05)
        assert model.failure_probability(2.0) > model.failure_probability(1.0)

    def test_empirical_failure_rate_matches(self):
        model = BathtubLifetimeModel(horizon_days=360, target_failure_probability=0.2)
        rng = np.random.default_rng(0)
        days = model.sample_failure_days(rng, np.ones(20000))
        assert np.mean(days > 0) == pytest.approx(0.2, abs=0.01)


class TestBathtubShape:
    def test_infant_hazard_elevated(self):
        model = BathtubLifetimeModel(horizon_days=540, target_failure_probability=0.1)
        early = model.hazard(5)
        middle = model.hazard(250)
        assert early > middle

    def test_wearout_hazard_rises(self):
        model = BathtubLifetimeModel(horizon_days=540, target_failure_probability=0.1)
        middle = model.hazard(250)
        late = model.hazard(530)
        assert late > middle

    def test_sampled_failures_show_bathtub(self):
        model = BathtubLifetimeModel(horizon_days=540, target_failure_probability=0.3)
        rng = np.random.default_rng(1)
        days = model.sample_failure_days(rng, np.ones(80000))
        edges = np.linspace(0, 540, 10)
        counts, _ = np.histogram(days[days > 0], bins=edges)
        # Empirical hazard per bin: failures / drives still at risk, which
        # removes the risk-set depletion that masks the wear-out rise.
        at_risk = 80000 - np.concatenate([[0], np.cumsum(counts)[:-1]])
        hazard = counts / at_risk
        thirds = np.array_split(hazard, 3)
        assert thirds[0].mean() > thirds[1].mean()
        assert thirds[2].mean() > thirds[1].mean()


class TestSampling:
    def test_scalar_sampling_within_horizon(self):
        model = BathtubLifetimeModel(horizon_days=100, target_failure_probability=0.9)
        rng = np.random.default_rng(2)
        for _ in range(200):
            day = model.sample_failure_day(rng)
            assert day is None or 1 <= day <= 100

    def test_survivor_returns_none(self):
        model = BathtubLifetimeModel(horizon_days=100, target_failure_probability=0.001)
        rng = np.random.default_rng(3)
        samples = [model.sample_failure_day(rng) for _ in range(500)]
        assert samples.count(None) > 450

    def test_vectorized_matches_semantics(self):
        model = BathtubLifetimeModel(horizon_days=200, target_failure_probability=0.3)
        rng = np.random.default_rng(4)
        days = model.sample_failure_days(rng, np.full(1000, 1.0))
        failed = days[days > 0]
        assert np.all((failed >= 1) & (failed <= 200))

    def test_invalid_multiplier_raises(self):
        model = BathtubLifetimeModel()
        with pytest.raises(ValueError):
            model.sample_failure_day(np.random.default_rng(0), multiplier=0.0)


class TestValidation:
    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            BathtubLifetimeModel(horizon_days=0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BathtubLifetimeModel(target_failure_probability=0.0)
        with pytest.raises(ValueError):
            BathtubLifetimeModel(target_failure_probability=1.0)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            BathtubLifetimeModel(infant_weight=0.7, wear_weight=0.5)
        with pytest.raises(ValueError):
            BathtubLifetimeModel(infant_weight=-0.1)
