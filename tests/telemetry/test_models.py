"""Unit tests for the drive-model catalog (Table VI structure)."""

import pytest

from repro.telemetry.models import (
    DRIVE_MODELS,
    VENDORS,
    DriveModel,
    drive_models_for_vendor,
)


class TestCatalog:
    def test_twelve_models_four_vendors(self):
        assert len(DRIVE_MODELS) == 12
        assert set(VENDORS) == {"I", "II", "III", "IV"}
        assert {m.vendor for m in DRIVE_MODELS} == set(VENDORS)

    def test_capacity_range_matches_paper(self):
        capacities = {m.capacity_gb for m in DRIVE_MODELS}
        assert min(capacities) == 128
        assert max(capacities) == 1024

    def test_layer_range_matches_paper(self):
        layers = {m.nand_layers for m in DRIVE_MODELS}
        assert min(layers) == 32
        assert max(layers) == 96

    def test_all_models_are_m2_tlc_nvme(self):
        for model in DRIVE_MODELS:
            assert model.form_factor == "M.2-2280"
            assert model.flash_tech == "3D TLC"
            assert model.protocol.startswith("NVMe")

    def test_fleet_shares_sum_to_one(self):
        assert sum(v.fleet_share for v in VENDORS.values()) == pytest.approx(1.0)

    def test_replacement_rate_ordering(self):
        # Paper Table VI: vendor I >> IV > II > III.
        rates = {name: v.replacement_rate for name, v in VENDORS.items()}
        assert rates["I"] > rates["IV"] > rates["II"] > rates["III"]

    def test_paper_replacement_rates_exact(self):
        assert VENDORS["I"].replacement_rate == pytest.approx(0.0068)
        assert VENDORS["II"].replacement_rate == pytest.approx(0.0007)
        assert VENDORS["III"].replacement_rate == pytest.approx(0.0005)
        assert VENDORS["IV"].replacement_rate == pytest.approx(0.0011)

    def test_firmware_ladder_lengths_match_fig3(self):
        # Fig 3: vendor I has 5 versions, II has 3, III and IV have 2.
        assert VENDORS["I"].n_firmware_versions == 5
        assert VENDORS["II"].n_firmware_versions == 3
        assert VENDORS["III"].n_firmware_versions == 2
        assert VENDORS["IV"].n_firmware_versions == 2

    def test_models_for_vendor(self):
        models = drive_models_for_vendor("II")
        assert len(models) == 4
        assert all(m.vendor == "II" for m in models)

    def test_unknown_vendor_raises(self):
        with pytest.raises(ValueError, match="unknown vendor"):
            drive_models_for_vendor("V")
        with pytest.raises(ValueError, match="unknown vendor"):
            DriveModel("X-1", "X", 256, 64)

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            DriveModel("I-bad", "I", 0, 64)
