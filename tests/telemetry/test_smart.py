"""Unit tests for the SMART catalog and trajectory simulator."""

import numpy as np
import pytest

from repro.telemetry.smart import (
    SMART_ATTRIBUTES,
    SMART_COLUMNS,
    SmartSimulator,
    smart_attribute_by_column,
)


def _simulate(gain, n_days=60, seed=0, capacity=512):
    rng = np.random.default_rng(seed)
    days = np.arange(n_days)
    hours = np.full(n_days, 6.0)
    if gain > 0:
        degradation = np.clip((days - (n_days - 20)) / 20, 0, 1) ** 1.5
    else:
        degradation = np.zeros(n_days)
    simulator = SmartSimulator(capacity_gb=capacity, smart_gain=gain)
    return simulator.simulate(days, hours, degradation, rng)


class TestCatalog:
    def test_sixteen_attributes(self):
        assert len(SMART_ATTRIBUTES) == 16
        assert len(SMART_COLUMNS) == 16

    def test_ids_are_table2_order(self):
        assert [a.smart_id for a in SMART_ATTRIBUTES] == list(range(1, 17))

    def test_lookup_by_column(self):
        attribute = smart_attribute_by_column("s12_power_on_hours")
        assert attribute.name == "Power On Hours"
        with pytest.raises(KeyError):
            smart_attribute_by_column("nope")

    def test_spare_threshold_flagged_uninformative(self):
        # The paper finds Available Spare Threshold barely matters.
        assert not smart_attribute_by_column("s4_spare_threshold").failure_relevant


class TestHealthyTrajectories:
    def test_all_columns_present_and_aligned(self):
        smart = _simulate(gain=0.0)
        assert set(smart) == set(SMART_COLUMNS)
        assert all(v.shape == (60,) for v in smart.values())

    def test_cumulative_counters_monotone(self):
        smart = _simulate(gain=0.0)
        for column in (
            "s6_data_units_read",
            "s7_data_units_written",
            "s12_power_on_hours",
            "s11_power_cycles",
            "s13_unsafe_shutdowns",
            "s14_media_errors",
            "s15_error_log_entries",
        ):
            assert np.all(np.diff(smart[column]) >= 0), column

    def test_power_on_hours_accumulates_usage(self):
        smart = _simulate(gain=0.0)
        np.testing.assert_allclose(smart["s12_power_on_hours"], 6.0 * np.arange(1, 61))

    def test_capacity_constant(self):
        smart = _simulate(gain=0.0, capacity=256)
        np.testing.assert_array_equal(smart["s16_capacity"], 256.0)

    def test_spare_threshold_constant(self):
        smart = _simulate(gain=0.0)
        np.testing.assert_array_equal(smart["s4_spare_threshold"], 10.0)

    def test_healthy_drive_rarely_critical(self):
        smart = _simulate(gain=0.0, n_days=200)
        assert smart["s1_critical_warning"].sum() == 0

    def test_available_spare_within_bounds(self):
        smart = _simulate(gain=0.0, n_days=200)
        assert np.all(smart["s3_available_spare"] <= 100.0)
        assert np.all(smart["s3_available_spare"] >= 0.0)

    def test_empty_days_empty_output(self):
        rng = np.random.default_rng(0)
        simulator = SmartSimulator(capacity_gb=512)
        smart = simulator.simulate(np.array([]), np.array([]), np.array([]), rng)
        assert all(v.size == 0 for v in smart.values())


class TestDegradedTrajectories:
    def test_media_errors_grow_near_failure(self):
        faulty = _simulate(gain=1.0)
        healthy = _simulate(gain=0.0)
        assert faulty["s14_media_errors"][-1] > healthy["s14_media_errors"][-1]

    def test_error_log_entries_grow_near_failure(self):
        faulty = _simulate(gain=1.0)
        assert faulty["s15_error_log_entries"][-1] > faulty["s15_error_log_entries"][20]

    def test_available_spare_drops(self):
        faulty = _simulate(gain=1.0)
        assert faulty["s3_available_spare"][-1] < faulty["s3_available_spare"][0]

    def test_critical_warning_eventually_set(self):
        faulty = _simulate(gain=1.2)
        assert faulty["s1_critical_warning"][-1] == 1.0

    def test_weak_gain_weak_signature(self):
        # System-level failures (low smart_gain) must look much quieter
        # than drive-level ones — the core premise of the paper.
        weak = _simulate(gain=0.2, seed=5)
        strong = _simulate(gain=1.0, seed=5)
        assert weak["s14_media_errors"][-1] < strong["s14_media_errors"][-1]

    def test_misaligned_inputs_raise(self):
        rng = np.random.default_rng(0)
        simulator = SmartSimulator(capacity_gb=512)
        with pytest.raises(ValueError, match="align"):
            simulator.simulate(np.arange(5), np.ones(4), np.zeros(5), rng)

    def test_non_increasing_days_raise(self):
        rng = np.random.default_rng(0)
        simulator = SmartSimulator(capacity_gb=512)
        days = np.array([0, 2, 2])
        with pytest.raises(ValueError, match="strictly increasing"):
            simulator.simulate(days, np.ones(3), np.zeros(3), rng)
