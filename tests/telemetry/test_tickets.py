"""Unit tests for RaSRF ticket generation (Table I)."""

import numpy as np
import pytest

from repro.telemetry.drive import DRIVE_LEVEL, SYSTEM_LEVEL
from repro.telemetry.tickets import RASRF_CATEGORIES, TicketGenerator


class _FakeDrive:
    def __init__(self, serial, failure_day, archetype):
        self.serial = serial
        self.failure_day = failure_day
        self.archetype = archetype

    @property
    def failed(self):
        return self.failure_day is not None


class TestCatalog:
    def test_probabilities_sum_to_one(self):
        assert sum(c.probability for c in RASRF_CATEGORIES) == pytest.approx(1.0, abs=0.002)

    def test_table1_level_split(self):
        drive_level = sum(
            c.probability for c in RASRF_CATEGORIES if c.failure_level == DRIVE_LEVEL
        )
        assert drive_level == pytest.approx(0.3162, abs=0.001)

    def test_boot_shutdown_subtotal(self):
        boot = sum(
            c.probability
            for c in RASRF_CATEGORIES
            if c.category == "Boot/Shutdown failure"
        )
        assert boot == pytest.approx(0.4821, abs=0.001)

    def test_storage_drive_failure_is_largest_cause(self):
        largest = max(RASRF_CATEGORIES, key=lambda c: c.probability)
        assert largest.cause == "Storage drive failure"
        assert largest.probability == pytest.approx(0.3113)


class TestTicketGenerator:
    def test_imt_never_precedes_failure(self):
        generator = TicketGenerator()
        rng = np.random.default_rng(0)
        for seed in range(50):
            ticket = generator.generate(_FakeDrive(seed, 100, DRIVE_LEVEL), rng)
            assert ticket.initial_maintenance_time >= 100

    def test_lag_bounded(self):
        generator = TicketGenerator(mean_repair_lag_days=5.0, max_lag_days=30)
        rng = np.random.default_rng(1)
        lags = [generator.sample_lag(rng) for _ in range(2000)]
        assert max(lags) <= 30
        assert min(lags) >= 0

    def test_typical_lag_under_theta(self):
        # θ=7 is optimal because most users repair within about a week.
        generator = TicketGenerator(mean_repair_lag_days=5.0)
        rng = np.random.default_rng(2)
        lags = np.array([generator.sample_lag(rng) for _ in range(2000)])
        assert np.median(lags) <= 7

    def test_category_respects_archetype(self):
        generator = TicketGenerator()
        rng = np.random.default_rng(3)
        drive_ticket = generator.generate(_FakeDrive(1, 50, DRIVE_LEVEL), rng)
        system_ticket = generator.generate(_FakeDrive(2, 50, SYSTEM_LEVEL), rng)
        assert drive_ticket.failure_level == DRIVE_LEVEL
        assert system_ticket.failure_level == SYSTEM_LEVEL

    def test_healthy_drive_rejected(self):
        generator = TicketGenerator()
        with pytest.raises(ValueError, match="did not fail"):
            generator.generate(_FakeDrive(1, None, DRIVE_LEVEL), np.random.default_rng(0))

    def test_generate_all_covers_only_failures(self):
        generator = TicketGenerator()
        drives = [
            _FakeDrive(1, 40, DRIVE_LEVEL),
            _FakeDrive(2, None, DRIVE_LEVEL),
            _FakeDrive(3, 90, SYSTEM_LEVEL),
        ]
        drives[1].failure_day = None
        tickets = generator.generate_all(drives, np.random.default_rng(4))
        assert sorted(t.serial for t in tickets) == [1, 3]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TicketGenerator(mean_repair_lag_days=0.0)
