"""Unit tests for dataset integrity validation."""

import numpy as np

from repro.telemetry.validation import validate_dataset


class TestCleanFleet:
    def test_simulated_fleet_is_sound(self, small_fleet):
        assert validate_dataset(small_fleet) == []

    def test_mixed_fleet_is_sound(self, mixed_fleet):
        assert validate_dataset(mixed_fleet) == []

    def test_repaired_fleet_is_sound(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        # Mean filling interpolates cumulative counters, which stays
        # monotone because the neighbors are ordered.
        assert validate_dataset(prepared) == []


class TestDetection:
    def _copy(self, dataset):
        from repro.telemetry.dataset import TelemetryDataset

        return TelemetryDataset(
            dict(dataset.columns), dict(dataset.drives), list(dataset.tickets)
        )

    def test_detects_unsorted_rows(self, small_fleet):
        broken = self._copy(small_fleet)
        columns = dict(broken.columns)
        columns["day"] = columns["day"].copy()
        columns["day"][0], columns["day"][1] = columns["day"][1], columns["day"][0]
        broken.columns = columns
        broken._serial_order = None
        assert any("sorted" in v for v in validate_dataset(broken))

    def test_detects_nan_smart(self, small_fleet):
        broken = self._copy(small_fleet)
        columns = dict(broken.columns)
        values = columns["s2_temperature"].copy()
        values[3] = np.nan
        columns["s2_temperature"] = values
        broken.columns = columns
        assert any("non-finite" in v for v in validate_dataset(broken))

    def test_detects_decreasing_counter(self, small_fleet):
        broken = self._copy(small_fleet)
        columns = dict(broken.columns)
        values = columns["s12_power_on_hours"].copy()
        values[5] = values[4] - 100.0
        columns["s12_power_on_hours"] = values
        broken.columns = columns
        assert any("decreases" in v for v in validate_dataset(broken))

    def test_monotone_check_optional(self, small_fleet):
        broken = self._copy(small_fleet)
        columns = dict(broken.columns)
        values = columns["s12_power_on_hours"].copy()
        values[5] = values[4] - 100.0
        columns["s12_power_on_hours"] = values
        broken.columns = columns
        assert validate_dataset(broken, check_monotone=False) == []

    def test_detects_orphan_metadata(self, small_fleet):
        from repro.telemetry.dataset import DriveMeta

        broken = self._copy(small_fleet)
        broken.drives = dict(broken.drives)
        broken.drives[10**9] = DriveMeta(
            10**9, "I", "I-A128", 128, "I_F_1", "healthy", None
        )
        assert any("no rows" in v for v in validate_dataset(broken))

    def test_detects_bad_ticket(self, small_fleet):
        from repro.telemetry.tickets import TroubleTicket

        broken = self._copy(small_fleet)
        healthy = int(small_fleet.healthy_serials()[0])
        broken.tickets = list(broken.tickets) + [
            TroubleTicket(healthy, 100, "drive_level", "Components failure", "x")
        ]
        assert any("non-failed" in v for v in validate_dataset(broken))

    def test_detects_premature_ticket(self, small_fleet):
        from repro.telemetry.tickets import TroubleTicket

        broken = self._copy(small_fleet)
        failed = int(small_fleet.failed_serials()[0])
        failure_day = small_fleet.drives[failed].failure_day
        broken.tickets = list(broken.tickets) + [
            TroubleTicket(failed, failure_day - 5, "drive_level", "Components failure", "x")
        ]
        assert any("precedes" in v for v in validate_dataset(broken))

    def test_detects_posthumous_logging(self, small_fleet):
        broken = self._copy(small_fleet)
        broken.drives = dict(broken.drives)
        failed = int(small_fleet.failed_serials()[0])
        meta = broken.drives[failed]
        from repro.telemetry.dataset import DriveMeta

        broken.drives[failed] = DriveMeta(
            meta.serial, meta.vendor, meta.model_id, meta.capacity_gb,
            meta.firmware, meta.archetype, max(1, meta.failure_day - 50),
        )
        assert any("after its failure" in v for v in validate_dataset(broken))
