"""Unit tests for usage personas."""

import numpy as np
import pytest

from repro.telemetry import FleetConfig, VendorMix, simulate_fleet
from repro.telemetry.validation import validate_dataset
from repro.telemetry.workloads import (
    DEFAULT_PERSONA_WEIGHTS,
    PERSONAS,
    PersonaUsageModel,
)


class TestPersonas:
    def test_four_personas(self):
        assert set(PERSONAS) == {"office", "home", "enthusiast", "casual"}

    def test_default_weights_cover_personas(self):
        assert set(DEFAULT_PERSONA_WEIGHTS) == set(PERSONAS)
        assert sum(DEFAULT_PERSONA_WEIGHTS.values()) == pytest.approx(1.0)

    def test_persona_patterns_distinct(self):
        rng = np.random.default_rng(0)
        office = [PERSONAS["office"].sample_pattern(rng) for _ in range(100)]
        casual = [PERSONAS["casual"].sample_pattern(rng) for _ in range(100)]
        assert np.mean([p.boot_probability for p in office]) > np.mean(
            [p.boot_probability for p in casual]
        )
        assert np.mean([p.mean_daily_hours for p in office]) > np.mean(
            [p.mean_daily_hours for p in casual]
        )

    def test_office_sleeps_on_weekends(self):
        rng = np.random.default_rng(1)
        pattern = PERSONAS["office"].sample_pattern(rng)
        days, _ = pattern.sample_observed_days(7000, rng)
        weekend_share = np.mean((days % 7) >= 5)
        assert weekend_share < 0.15

    def test_enthusiast_nearly_always_on(self):
        rng = np.random.default_rng(2)
        pattern = PERSONAS["enthusiast"].sample_pattern(rng)
        days, _ = pattern.sample_observed_days(365, rng)
        assert days.size > 0.7 * 365


class TestPersonaUsageModel:
    def test_respects_weights(self):
        model = PersonaUsageModel({"office": 1.0})
        rng = np.random.default_rng(3)
        for _ in range(20):
            assert model.sample_persona(rng).name == "office"

    def test_mixture_sampling(self):
        model = PersonaUsageModel({"office": 0.5, "casual": 0.5})
        rng = np.random.default_rng(4)
        names = {model.sample_persona(rng).name for _ in range(200)}
        assert names == {"office", "casual"}

    def test_unknown_persona_rejected(self):
        with pytest.raises(ValueError, match="unknown personas"):
            PersonaUsageModel({"gamer_rig": 1.0})

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            PersonaUsageModel({})
        with pytest.raises(ValueError):
            PersonaUsageModel({"office": 0.0})


class TestFleetIntegration:
    def test_persona_fleet_valid(self):
        dataset = simulate_fleet(
            FleetConfig(
                mix=VendorMix({"I": 60}),
                horizon_days=150,
                failure_boost=25.0,
                persona_weights=DEFAULT_PERSONA_WEIGHTS,
                seed=8,
            )
        )
        assert validate_dataset(dataset) == []

    def test_persona_fleet_more_heterogeneous(self):
        base = dict(mix=VendorMix({"I": 120}), horizon_days=200, failure_boost=5.0, seed=9)
        generic = simulate_fleet(FleetConfig(**base))
        personas = simulate_fleet(
            FleetConfig(persona_weights=DEFAULT_PERSONA_WEIGHTS, **base)
        )

        def record_count_spread(dataset):
            counts = [
                dataset.drive_rows(int(s))["day"].size for s in dataset.serials
            ]
            return np.std(counts)

        assert record_count_spread(personas) > record_count_spread(generic)

    def test_persona_fleet_still_trainable(self):
        from repro.core import MFPA, MFPAConfig

        dataset = simulate_fleet(
            FleetConfig(
                mix=VendorMix({"I": 250}),
                horizon_days=300,
                failure_boost=25.0,
                persona_weights=DEFAULT_PERSONA_WEIGHTS,
                seed=10,
            )
        )
        model = MFPA(MFPAConfig())
        model.fit(dataset, train_end_day=200)
        result = model.evaluate(200, 300)
        assert result.drive_report.tpr >= 0.6
