"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.telemetry.io import load_dataset


@pytest.fixture(scope="module")
def saved_fleet(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "fleet"
    code = main(
        [
            "simulate",
            str(path),
            "--vendor",
            "I=120",
            "--horizon-days",
            "200",
            "--failure-boost",
            "30",
            "--seed",
            "5",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "out"])
        assert args.failure_boost == 20.0
        assert args.horizon_days == 540

    def test_train_defaults_match_paper(self):
        args = build_parser().parse_args(["train", "data"])
        assert args.feature_group == "SFWB"
        assert args.theta == 7

    def test_n_jobs_flag_on_parallel_subcommands(self):
        assert build_parser().parse_args(["train", "d"]).n_jobs == 1
        for command in ("train", "monitor", "chaos"):
            args = build_parser().parse_args([command, "d", "--n-jobs", "4"])
            assert args.n_jobs == 4

    def test_split_algorithm_flag_on_training_subcommands(self):
        assert build_parser().parse_args(["train", "d"]).split_algorithm == "exact"
        for command in ("train", "monitor", "chaos"):
            args = build_parser().parse_args(
                [command, "d", "--split-algorithm", "hist"]
            )
            assert args.split_algorithm == "hist"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "d", "--split-algorithm", "bogus"])


class TestSimulate:
    def test_writes_loadable_dataset(self, saved_fleet):
        dataset = load_dataset(saved_fleet)
        assert dataset.n_drives == 120
        assert all(m.vendor == "I" for m in dataset.drives.values())

    def test_bad_vendor_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", str(tmp_path / "x"), "--vendor", "Z=10"])
        with pytest.raises(SystemExit):
            main(["simulate", str(tmp_path / "x"), "--vendor", "I=abc"])


class TestTrain:
    def test_prints_metrics(self, saved_fleet, capsys):
        code = main(
            [
                "train",
                str(saved_fleet),
                "--train-end-day",
                "140",
                "--eval-end-day",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TPR" in out
        assert "drive" in out and "record" in out

    def test_train_with_n_jobs_matches_serial(self, saved_fleet, capsys):
        from repro.parallel import fork_available

        if not fork_available():
            pytest.skip("parallel path requires fork")
        main(["train", str(saved_fleet), "--train-end-day", "140",
              "--eval-end-day", "200"])
        serial_out = capsys.readouterr().out
        main(["train", str(saved_fleet), "--train-end-day", "140",
              "--eval-end-day", "200", "--n-jobs", "2"])
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out

    def test_train_with_hist_split_algorithm(self, saved_fleet, capsys):
        code = main(
            [
                "train",
                str(saved_fleet),
                "--train-end-day",
                "140",
                "--eval-end-day",
                "200",
                "--split-algorithm",
                "hist",
            ]
        )
        assert code == 0
        assert "TPR" in capsys.readouterr().out


class TestSummary:
    def test_prints_table6(self, saved_fleet, capsys):
        assert main(["summary", str(saved_fleet)]) == 0
        out = capsys.readouterr().out
        assert "Sum_RR" in out
        assert "I" in out


class TestMonitor:
    def test_runs_operation(self, saved_fleet, capsys):
        code = main(
            [
                "monitor",
                str(saved_fleet),
                "--start-day",
                "120",
                "--end-day",
                "200",
                "--window-days",
                "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "lead time" in out

    def test_checkpoint_and_resume(self, saved_fleet, capsys, tmp_path):
        checkpoint = str(tmp_path / "ckpt")
        base = [
            "monitor",
            str(saved_fleet),
            "--start-day",
            "120",
            "--end-day",
            "200",
            "--window-days",
            "40",
            "--checkpoint-dir",
            checkpoint,
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        # resume finds all windows already scored and reports the same run
        assert second == first


class TestValidationFlags:
    def test_validate_flag_passes_clean_dataset(self, saved_fleet, capsys):
        assert main(["summary", str(saved_fleet), "--validate"]) == 0

    def test_sanitize_flag_accepted(self, saved_fleet, capsys):
        assert main(["summary", str(saved_fleet), "--sanitize", "--validate"]) == 0


class TestChaos:
    def test_single_fault_table(self, saved_fleet, capsys):
        code = main(
            [
                "chaos",
                str(saved_fleet),
                "--fault",
                "drop_days",
                "--start-day",
                "120",
                "--end-day",
                "200",
                "--window-days",
                "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Chaos degradation" in out
        assert "drop_days" in out
        assert "(clean)" in out

    def test_unknown_fault_rejected(self, saved_fleet):
        with pytest.raises(ValueError, match="unknown fault"):
            main(["chaos", str(saved_fleet), "--fault", "gamma_rays"])
