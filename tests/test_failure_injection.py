"""Failure-injection tests: corrupted inputs produce clean errors.

A library adopted downstream gets fed malformed data. Every injection
here must surface as a specific, catchable exception — never a numpy
broadcast error or silently wrong numbers.
"""

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.core.labeling import FailureTimeIdentifier, build_samples
from repro.core.preprocess import preprocess, repair_discontinuity
from repro.ml import (
    GaussianNaiveBayes,
    GradientBoostingClassifier,
    LinearSVM,
    RandomForestClassifier,
)
from repro.telemetry.dataset import TelemetryDataset


def _corrupt(dataset, **column_overrides):
    columns = dict(dataset.columns)
    columns.update(column_overrides)
    return TelemetryDataset(columns, dict(dataset.drives), list(dataset.tickets))


class TestCorruptedTelemetry:
    def test_nan_smart_rejected_at_fit(self, small_fleet):
        values = small_fleet.columns["s14_media_errors"].copy()
        values[100] = np.nan
        broken = _corrupt(small_fleet, s14_media_errors=values)
        model = MFPA(MFPAConfig())
        with pytest.raises(ValueError, match="NaN"):
            model.fit(broken, train_end_day=240)

    def test_negative_event_counts_rejected(self, small_fleet):
        values = small_fleet.columns["w7_bad_block"].copy()
        values[5] = -3.0
        broken = _corrupt(small_fleet, w7_bad_block=values)
        with pytest.raises(ValueError, match="non-negative"):
            preprocess(broken)

    def test_infinite_values_rejected_at_fit(self, small_fleet):
        values = small_fleet.columns["s2_temperature"].copy()
        values[9] = np.inf
        broken = _corrupt(small_fleet, s2_temperature=values)
        with pytest.raises(ValueError, match="NaN|infinite"):
            MFPA(MFPAConfig()).fit(broken, train_end_day=240)

    def test_ragged_columns_rejected_at_construction(self, small_fleet):
        with pytest.raises(ValueError, match="ragged"):
            _corrupt(small_fleet, s2_temperature=np.ones(3))


class TestDegenerateConfigurations:
    def test_training_window_before_any_failure(self, small_fleet):
        with pytest.raises(ValueError, match="no positive samples"):
            MFPA(MFPAConfig()).fit(small_fleet, train_end_day=1)

    def test_absurd_repair_thresholds(self, small_fleet):
        with pytest.raises(ValueError, match="every record"):
            repair_discontinuity(small_fleet, min_segment_records=10**6)

    def test_unknown_feature_columns_fail_loudly(self, small_fleet):
        config = MFPAConfig(feature_columns=("no_such_column",))
        with pytest.raises(KeyError, match="missing feature columns"):
            MFPA(config).fit(small_fleet, train_end_day=240)

    def test_empty_ticket_list_fails_at_fit(self, small_fleet):
        stripped = TelemetryDataset(
            dict(small_fleet.columns), dict(small_fleet.drives), []
        )
        with pytest.raises(ValueError, match="no positive samples"):
            MFPA(MFPAConfig()).fit(stripped, train_end_day=240)


class TestEstimatorRobustness:
    @pytest.mark.parametrize(
        "estimator",
        [
            GaussianNaiveBayes(),
            LinearSVM(n_epochs=2),
            RandomForestClassifier(n_estimators=2),
            GradientBoostingClassifier(n_estimators=2),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_nan_inputs_rejected(self, estimator):
        X = np.ones((10, 3))
        X[0, 0] = np.nan
        y = np.array([0, 1] * 5)
        with pytest.raises(ValueError, match="NaN"):
            estimator.fit(X, y)

    @pytest.mark.parametrize(
        "estimator",
        [
            GaussianNaiveBayes(),
            RandomForestClassifier(n_estimators=2),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_predict_wrong_width_rejected(self, estimator, binary_blobs):
        X, y = binary_blobs
        estimator.fit(X, y)
        with pytest.raises(ValueError, match="features"):
            estimator.predict(np.ones((2, X.shape[1] + 1)))

    def test_single_sample_fit(self):
        # Degenerate but legal: one sample of one class.
        model = GaussianNaiveBayes().fit(np.ones((1, 2)), np.array([1]))
        assert model.predict(np.ones((1, 2)))[0] == 1


class TestLabelingEdgeCases:
    def test_ticket_for_drive_without_telemetry_skipped(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        from repro.telemetry.tickets import TroubleTicket

        ghost = TroubleTicket(10**8, 100, "drive_level", "Components failure", "x")
        hacked = TelemetryDataset(
            dict(prepared.columns),
            dict(prepared.drives),
            list(prepared.tickets) + [ghost],
        )
        failure_times = FailureTimeIdentifier().identify(hacked)
        assert 10**8 not in failure_times

    def test_window_larger_than_history_yields_fewer_positives(self, prepared_fleet):
        prepared, _, _ = prepared_fleet
        failure_times = FailureTimeIdentifier().identify(prepared)
        # Gigantic lookahead pushes every positive window before day 0.
        samples = build_samples(
            prepared, failure_times, positive_window=7, lookahead=10_000
        )
        assert samples.n_positive == 0
