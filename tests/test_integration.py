"""End-to-end integration tests: simulate -> preprocess -> train -> evaluate.

These assert the paper's headline *shapes* hold on a fresh synthetic
fleet, exercising every package together.
"""

import numpy as np
import pytest

from repro.core import MFPA, MFPAConfig
from repro.core.baselines import SmartThresholdDetector
from repro.core.labeling import FailureTimeIdentifier
from repro.ml.metrics import true_positive_rate
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet


@pytest.fixture(scope="module")
def fleet():
    config = FleetConfig(
        mix=VendorMix({"I": 350}),
        horizon_days=420,
        failure_boost=25.0,
        seed=1234,
    )
    return simulate_fleet(config)


@pytest.fixture(scope="module")
def sfwb_result(fleet):
    model = MFPA(MFPAConfig(feature_group_name="SFWB"))
    model.fit(fleet, train_end_day=300)
    return model, model.evaluate(300, 420)


@pytest.fixture(scope="module")
def smart_result(fleet):
    model = MFPA(MFPAConfig(feature_group_name="S"))
    model.fit(fleet, train_end_day=300)
    return model, model.evaluate(300, 420)


class TestHeadlineShape:
    def test_sfwb_high_tpr(self, sfwb_result):
        _, result = sfwb_result
        assert result.drive_report.tpr >= 0.85

    def test_sfwb_low_fpr(self, sfwb_result):
        _, result = sfwb_result
        assert result.drive_report.fpr <= 0.08

    def test_sfwb_beats_smart_on_auc(self, sfwb_result, smart_result):
        _, sfwb = sfwb_result
        _, smart = smart_result
        assert sfwb.drive_report.auc >= smart.drive_report.auc

    def test_smart_only_weaker_tpr(self, sfwb_result, smart_result):
        _, sfwb = sfwb_result
        _, smart = smart_result
        assert sfwb.drive_report.tpr >= smart.drive_report.tpr

    def test_threshold_detector_weakest(self, fleet, sfwb_result):
        model, result = sfwb_result
        y_true, y_pred = SmartThresholdDetector().evaluate_drives(
            model.dataset_, model.failure_times_, 300, 420
        )
        assert true_positive_rate(y_true, y_pred) <= result.drive_report.tpr


class TestDeterminism:
    def test_full_pipeline_reproducible(self, fleet):
        def run():
            model = MFPA(MFPAConfig(feature_group_name="SF", seed=5))
            model.fit(fleet, train_end_day=300)
            return model.evaluate(300, 420).drive_report

        first = run()
        second = run()
        assert first == second


class TestLabelingQuality:
    def test_theta_rule_accuracy(self, fleet):
        # The identified failure times should be near the true simulated
        # failure days; this is the whole point of the θ optimization.
        from repro.core.preprocess import preprocess

        prepared, _, _ = preprocess(fleet)
        identified = FailureTimeIdentifier(theta=7).identify(prepared)
        errors = [
            abs(identified[serial] - prepared.drives[serial].failure_day)
            for serial in identified
        ]
        assert np.median(errors) <= 5
        assert np.mean(errors) <= 12
