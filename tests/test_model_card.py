"""Tests for the markdown model-card generator."""

import pytest

from repro.core import MFPA, MFPAConfig
from repro.reporting.model_card import generate_model_card


@pytest.fixture(scope="module")
def fitted(small_fleet):
    model = MFPA(MFPAConfig())
    model.fit(small_fleet, train_end_day=240)
    return model


class TestModelCard:
    @pytest.fixture(scope="class")
    def card(self, fitted):
        return generate_model_card(fitted, 240, 360, importance_repeats=1)

    def test_has_all_sections(self, card):
        for heading in (
            "# MFPA model card",
            "## Configuration",
            "## Training data",
            "## Evaluation",
            "## Top features",
            "## Feature drift",
            "## Caveats",
        ):
            assert heading in card

    def test_configuration_reflects_model(self, card, fitted):
        assert f"**{fitted.config.feature_group_name}**" in card
        assert type(fitted.model_).__name__ in card
        assert f"θ (failure-time threshold): {fitted.config.theta}" in card

    def test_metrics_table_present(self, card):
        assert "| drive |" in card
        assert "| record |" in card

    def test_optional_sections_skippable(self, fitted):
        card = generate_model_card(
            fitted, 240, 360, include_importance=False, include_drift=False
        )
        assert "## Top features" not in card
        assert "## Feature drift" not in card
        assert "## Caveats" in card

    def test_unfitted_model_rejected(self):
        with pytest.raises(RuntimeError):
            generate_model_card(MFPA(), 0, 10)

    def test_renders_as_valid_markdown_table(self, card):
        # Every table row has the same number of pipes as the header.
        lines = [l for l in card.splitlines() if l.startswith("|")]
        pipe_counts = {line.count("|") for line in lines}
        assert len(pipe_counts) == 1
