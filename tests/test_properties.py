"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.preprocess import _grouped_cumsum
from repro.core.splitting import TimeSeriesCrossValidator
from repro.ml.encoding import LabelEncoder, MinMaxScaler, StandardScaler
from repro.ml.metrics import (
    accuracy,
    auc_score,
    confusion_matrix,
    false_positive_rate,
    positive_detection_rate,
    true_positive_rate,
)
from repro.ml.resampling import RandomUnderSampler

# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

labels = arrays(np.int64, st.integers(2, 60), elements=st.integers(0, 1))


@given(labels, st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_confusion_matrix_cells_sum_to_n(y_true, seed):
    y_pred = np.random.default_rng(seed).integers(0, 2, y_true.size)
    tp, fp, fn, tn = confusion_matrix(y_true, y_pred)
    assert tp + fp + fn + tn == y_true.size
    assert min(tp, fp, fn, tn) >= 0


@given(labels, st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_rates_bounded(y_true, seed):
    y_pred = np.random.default_rng(seed).integers(0, 2, y_true.size)
    for metric in (true_positive_rate, false_positive_rate):
        value = metric(y_true, y_pred)
        assert np.isnan(value) or 0.0 <= value <= 1.0
    assert 0.0 <= accuracy(y_true, y_pred) <= 1.0
    assert 0.0 <= positive_detection_rate(y_true, y_pred) <= 1.0


@given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_auc_invariant_to_monotone_transform(n_pos, n_neg, seed):
    generator = np.random.default_rng(seed)
    y = np.concatenate([np.ones(n_pos, dtype=int), np.zeros(n_neg, dtype=int)])
    scores = generator.random(y.size)
    base = auc_score(y, scores)
    transformed = auc_score(y, np.exp(3 * scores))  # strictly monotone map
    assert abs(base - transformed) < 1e-12


@given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_auc_complement_symmetry(n_pos, n_neg, seed):
    generator = np.random.default_rng(seed)
    y = np.concatenate([np.ones(n_pos, dtype=int), np.zeros(n_neg, dtype=int)])
    scores = generator.random(y.size)
    assert abs(auc_score(y, scores) + auc_score(y, -scores) - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


@given(st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_label_encoder_roundtrip(values):
    encoder = LabelEncoder()
    codes = encoder.fit_transform(values)
    assert encoder.inverse_transform(codes) == values
    assert codes.max() < len(encoder.classes_)


@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 40), st.integers(1, 6)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_standard_scaler_output_finite_and_centered(X):
    Z = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(Z))
    np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-6)


@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 40), st.integers(1, 6)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_minmax_scaler_bounded(X):
    Z = MinMaxScaler().fit_transform(X)
    assert np.all(Z >= -1e-12)
    assert np.all(Z <= 1 + 1e-12)


# ---------------------------------------------------------------------------
# Resampling
# ---------------------------------------------------------------------------


@given(
    st.integers(1, 30),
    st.integers(1, 300),
    st.floats(0.5, 10.0),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_undersampler_ratio_property(n_minority, n_majority, ratio, seed):
    X = np.zeros((n_minority + n_majority, 2))
    y = np.array([1] * n_minority + [0] * n_majority)
    Xr, yr = RandomUnderSampler(ratio=ratio, seed=seed).fit_resample(X, y)
    # Mirror the sampler's tie-breaking: np.argmin picks the first label
    # (0) when the class counts are equal.
    if n_majority <= n_minority:
        minority_label, minority_count, majority_count = 0, n_majority, n_minority
    else:
        minority_label, minority_count, majority_count = 1, n_minority, n_majority
    kept_majority = np.sum(yr != minority_label)
    target = int(round(ratio * minority_count))
    assert np.sum(yr == minority_label) == minority_count
    assert kept_majority == min(target, majority_count)


# ---------------------------------------------------------------------------
# Grouped cumulative sums
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(1, 10), min_size=1, max_size=8),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_grouped_cumsum_matches_per_group_numpy(group_sizes, seed):
    generator = np.random.default_rng(seed)
    values = generator.integers(0, 5, sum(group_sizes)).astype(float)
    starts = np.zeros(values.size, dtype=bool)
    position = 0
    for size in group_sizes:
        starts[position] = True
        position += size
    result = _grouped_cumsum(values, starts)
    position = 0
    for size in group_sizes:
        np.testing.assert_allclose(
            result[position : position + size],
            np.cumsum(values[position : position + size]),
        )
        position += size


# ---------------------------------------------------------------------------
# Weighted trees
# ---------------------------------------------------------------------------


@given(st.floats(0.1, 100.0), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_uniform_sample_weights_equal_unweighted_tree(scale, seed):
    from repro.ml.tree import DecisionTreeClassifier

    generator = np.random.default_rng(seed)
    X = generator.normal(size=(60, 3))
    y = (X[:, 0] + 0.3 * generator.normal(size=60) > 0).astype(int)
    if np.unique(y).size < 2:
        return
    plain = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
    scaled = DecisionTreeClassifier(max_depth=3, seed=0)
    scaled.fit(X, y, sample_weight=np.full(60, scale))
    np.testing.assert_allclose(
        plain.predict_proba(X), scaled.predict_proba(X), atol=1e-9
    )


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_tree_prediction_invariant_to_row_order(seed):
    from repro.ml.tree import DecisionTreeClassifier

    generator = np.random.default_rng(seed)
    X = generator.normal(size=(50, 2))
    y = (X[:, 0] > 0).astype(int)
    if np.unique(y).size < 2:
        return
    permutation = generator.permutation(50)
    a = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
    b = DecisionTreeClassifier(max_depth=4, seed=0).fit(X[permutation], y[permutation])
    np.testing.assert_allclose(a.predict_proba(X), b.predict_proba(X), atol=1e-9)


# ---------------------------------------------------------------------------
# Time-series CV
# ---------------------------------------------------------------------------


@given(st.integers(1, 6), st.integers(0, 200))
@settings(max_examples=50, deadline=None)
def test_ts_cv_never_trains_on_future(k, extra_rows):
    n = 2 * k + extra_rows
    X = np.arange(n).reshape(-1, 1)
    for train, validation in TimeSeriesCrossValidator(k=k).split(X):
        assert train.max() < validation.min()
        assert validation.size > 0
        assert train.size > 0
