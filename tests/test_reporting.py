"""Tests for the ASCII table/series renderers."""

import pytest

from repro.reporting import render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["vendor", "rr"], [["I", 0.0068], ["II", 0.0007]], title="Table VI"
        )
        lines = text.splitlines()
        assert lines[0] == "Table VI"
        assert "vendor" in lines[1] and "rr" in lines[1]
        assert len(lines) == 5

    def test_column_alignment(self):
        text = render_table(["a", "bbbb"], [["xxxxx", 1]])
        header, separator, row = text.splitlines()
        assert len(header) == len(row)

    def test_float_formatting(self):
        text = render_table(["v"], [[0.5], [float("nan")], [1234567.0], [0.00001]])
        assert "NaN" in text
        assert "e" in text.lower()  # scientific for extremes

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_bar_lengths_proportional(self):
        text = render_series("tpr", ["d1", "d2"], [0.5, 1.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_nan_rendered(self):
        text = render_series("x", [1], [float("nan")])
        assert "NaN" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], [0.5])

    def test_zero_peak(self):
        text = render_series("x", [1, 2], [0.0, 0.0])
        assert text  # no division-by-zero crash
