"""Property-based tests: every simulated fleet satisfies the dataset
invariants, for arbitrary (small) configurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.survival import kaplan_meier
from repro.telemetry import FleetConfig, VendorMix, simulate_fleet
from repro.telemetry.validation import validate_dataset

fleet_configs = st.builds(
    FleetConfig,
    mix=st.sampled_from(
        [
            VendorMix({"I": 25}),
            VendorMix({"II": 25}),
            VendorMix({"I": 12, "IV": 12}),
            VendorMix.uniform(8),
        ]
    ),
    horizon_days=st.sampled_from([60, 120, 200]),
    failure_boost=st.sampled_from([5.0, 30.0, 80.0]),
    mean_boot_probability=st.sampled_from([0.3, 0.62, 0.9]),
    seed=st.integers(0, 10_000),
)


@given(fleet_configs)
@settings(max_examples=15, deadline=None)
def test_simulated_fleets_always_valid(config):
    dataset = simulate_fleet(config)
    assert validate_dataset(dataset) == []


@given(fleet_configs)
@settings(max_examples=10, deadline=None)
def test_failed_drives_have_tickets_and_bounds(config):
    dataset = simulate_fleet(config)
    ticket_serials = {t.serial for t in dataset.tickets}
    for serial, meta in dataset.drives.items():
        if meta.failed:
            assert serial in ticket_serials
            assert 1 <= meta.failure_day <= config.horizon_days
        else:
            assert serial not in ticket_serials


@given(fleet_configs)
@settings(max_examples=10, deadline=None)
def test_preprocess_keeps_fleets_valid(config):
    from repro.core.preprocess import preprocess

    dataset = simulate_fleet(config)
    try:
        prepared, report, _ = preprocess(dataset)
    except ValueError:
        # Tiny sparse fleets can lose everything to the repair
        # thresholds; that is an explicit, documented failure mode.
        return
    assert validate_dataset(prepared) == []
    assert report.n_output_rows == prepared.n_records


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_fleet_survival_curve_well_formed(seed):
    dataset = simulate_fleet(
        FleetConfig(
            mix=VendorMix({"I": 30}), horizon_days=120, failure_boost=40.0, seed=seed
        )
    )
    durations, observed = [], []
    for serial, meta in dataset.drives.items():
        if meta.failed:
            durations.append(meta.failure_day)
            observed.append(1)
        else:
            durations.append(dataset.drive_rows(serial)["day"][-1])
            observed.append(0)
    if not any(observed):
        return
    km = kaplan_meier(np.asarray(durations, dtype=float), np.asarray(observed))
    assert np.all(np.diff(km["survival"]) <= 1e-12)
    assert km["survival"][-1] >= 0.0
