#!/usr/bin/env python
"""Lint: no stray ``print()``; no silent excepts in serve/; no
``http.server`` outside ``src/repro/obs/``; no raw file writes in ml/.

Four AST checks over ``src/repro`` (``make lint-obs``):

* library output must flow through ``repro.obs.get_logger`` so it
  carries a level and respects ``--log-level`` / ``--log-json`` — any
  ``print(...)`` outside the allowlisted CLI entry point fails;
* the serve daemon (``src/repro/serve/``) and the out-of-core subsystem
  (``src/repro/scale/``) are long-running supervisors whose whole job
  is *accounting* for failures — a bare ``except:`` or an ``except
  Exception:`` whose body is only ``pass``/``...`` hides a fault from
  the quarantine counters, the breaker, the shard manifest checks and
  the logs, so both are rejected there;
* the HTTP surface is ``repro.obs.server``'s single responsibility —
  importing ``http.server`` anywhere else in the library scatters
  socket lifecycles and bypasses the endpoint's scrape counters, dump
  retries and access-log routing, so it is rejected outside
  ``src/repro/obs/``;
* model artifacts (``src/repro/ml/``) are verified by per-file sha256
  in a manifest written last — a partial file from a crashed raw
  ``open(..., "w")`` / ``write_text`` / ``write_bytes`` would either
  fail that verification or, worse, be manifested before it is
  durable, so every write there must go through
  ``repro.robustness.checkpoint.atomic_write`` (fsync + rename).

AST-based on purpose: docstrings contain ``print()`` usage examples and
prose about ``except`` clauses that a grep would false-positive on.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Files (relative to src/repro) where print() remains acceptable.
ALLOWED = {
    Path("cli.py"),  # argparse entry point; output goes through get_logger,
    # but SystemExit-adjacent fallbacks may print
}

#: Directories (relative to src/repro) under the silent-except ban.
STRICT_EXCEPT_DIRS = frozenset({Path("serve"), Path("scale")})

#: The only directory (relative to src/repro) allowed to import
#: ``http.server``.
HTTP_SERVER_DIR = Path("obs")

#: Directory (relative to src/repro) where file writes must route
#: through ``repro.robustness.checkpoint.atomic_write``.
ATOMIC_WRITE_DIR = Path("ml")


def find_prints(tree: ast.AST) -> list[tuple[int, str]]:
    return [
        (node.lineno, "print() call")
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def _is_silent_body(body: list[ast.stmt]) -> bool:
    """Whether an except body does nothing but swallow."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
        for stmt in body
    )


def find_silent_excepts(tree: ast.AST) -> list[tuple[int, str]]:
    offenders: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            offenders.append(
                (node.lineno, "bare `except:` (name the exception type)")
            )
        elif (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
            and _is_silent_body(node.body)
        ):
            offenders.append(
                (
                    node.lineno,
                    f"`except {node.type.id}: pass` swallows the fault — "
                    "count, log or re-raise it",
                )
            )
    return offenders


def find_http_server_imports(tree: ast.AST) -> list[tuple[int, str]]:
    """``http.server`` reached any way: ``import http.server``,
    ``from http.server import ...``, or ``from http import server``."""
    offenders: list[tuple[int, str]] = []
    message = (
        "http.server import outside src/repro/obs/ — the live endpoint "
        "lives in repro.obs.server; talk to it instead"
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name == "http.server" or alias.name.startswith("http.server.")
                for alias in node.names
            ):
                offenders.append((node.lineno, message))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "http.server" or module.startswith("http.server."):
                offenders.append((node.lineno, message))
            elif module == "http" and any(
                alias.name == "server" for alias in node.names
            ):
                offenders.append((node.lineno, message))
    return offenders


def find_raw_writes(tree: ast.AST) -> list[tuple[int, str]]:
    """Write-mode ``open()`` and ``Path.write_text``/``write_bytes``.

    ``open()`` with a non-literal mode is flagged too: if the mode can
    vary at runtime, the call can write, and artifact bytes must only
    reach disk through ``atomic_write``.
    """
    offenders: list[tuple[int, str]] = []
    route = "route artifact writes through robustness.checkpoint.atomic_write"
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "write_text",
            "write_bytes",
        ):
            offenders.append(
                (node.lineno, f".{node.func.attr}() — {route}")
            )
        elif isinstance(node.func, ast.Name) and node.func.id == "open":
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
            if mode is None:
                continue  # default "r" is a read
            if not (
                isinstance(mode, ast.Constant) and isinstance(mode.value, str)
            ):
                offenders.append(
                    (node.lineno, f"open() with dynamic mode — {route}")
                )
            elif any(flag in mode.value for flag in "wax+"):
                offenders.append(
                    (
                        node.lineno,
                        f'open(..., "{mode.value}") — {route}',
                    )
                )
    return offenders


def main() -> int:
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        tree = ast.parse(path.read_text(), filename=str(path))
        findings: list[tuple[int, str]] = []
        if relative not in ALLOWED:
            findings.extend(find_prints(tree))
        if any(strict in relative.parents for strict in STRICT_EXCEPT_DIRS):
            findings.extend(find_silent_excepts(tree))
        if HTTP_SERVER_DIR not in relative.parents:
            findings.extend(find_http_server_imports(tree))
        if ATOMIC_WRITE_DIR in relative.parents:
            findings.extend(find_raw_writes(tree))
        for lineno, message in sorted(findings):
            offenders.append(f"src/repro/{relative}:{lineno}: {message}")
    if offenders:
        print("\n".join(offenders))
        print(f"\n{len(offenders)} lint finding(s)")
        return 1
    print(
        "lint-obs: no stray print() calls in src/repro; "
        "no silent excepts in src/repro/serve or src/repro/scale; "
        "no http.server imports outside src/repro/obs; "
        "no raw file writes in src/repro/ml (atomic_write only)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
