#!/usr/bin/env python
"""Lint: no stray ``print()`` in the library (``make lint-obs``).

Library output must flow through ``repro.obs.get_logger`` so it carries
a level and respects ``--log-level`` / ``--log-json``. This walks the
AST of every module under ``src/repro`` and fails on any ``print(...)``
call outside the allowlisted CLI entry point. AST-based on purpose: the
docstrings contain ``print()`` usage examples that a grep would
false-positive on.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Files (relative to src/repro) where print() remains acceptable.
ALLOWED = {
    Path("cli.py"),  # argparse entry point; output goes through get_logger,
    # but SystemExit-adjacent fallbacks may print
}


def find_prints(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(), filename=str(path))
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def main() -> int:
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if relative in ALLOWED:
            continue
        for lineno in find_prints(path):
            offenders.append(f"src/repro/{relative}:{lineno}: print() call")
    if offenders:
        print("\n".join(offenders))
        print(
            f"\n{len(offenders)} stray print() call(s) — use "
            "repro.obs.get_logger(...) instead"
        )
        return 1
    print("lint-obs: no stray print() calls in src/repro")
    return 0


if __name__ == "__main__":
    sys.exit(main())
