#!/usr/bin/env python
"""Lint: no stray ``print()``; no silent excepts in serve/; no
``http.server`` outside ``src/repro/obs/``.

Three AST checks over ``src/repro`` (``make lint-obs``):

* library output must flow through ``repro.obs.get_logger`` so it
  carries a level and respects ``--log-level`` / ``--log-json`` — any
  ``print(...)`` outside the allowlisted CLI entry point fails;
* the serve daemon (``src/repro/serve/``) and the out-of-core subsystem
  (``src/repro/scale/``) are long-running supervisors whose whole job
  is *accounting* for failures — a bare ``except:`` or an ``except
  Exception:`` whose body is only ``pass``/``...`` hides a fault from
  the quarantine counters, the breaker, the shard manifest checks and
  the logs, so both are rejected there;
* the HTTP surface is ``repro.obs.server``'s single responsibility —
  importing ``http.server`` anywhere else in the library scatters
  socket lifecycles and bypasses the endpoint's scrape counters, dump
  retries and access-log routing, so it is rejected outside
  ``src/repro/obs/``.

AST-based on purpose: docstrings contain ``print()`` usage examples and
prose about ``except`` clauses that a grep would false-positive on.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Files (relative to src/repro) where print() remains acceptable.
ALLOWED = {
    Path("cli.py"),  # argparse entry point; output goes through get_logger,
    # but SystemExit-adjacent fallbacks may print
}

#: Directories (relative to src/repro) under the silent-except ban.
STRICT_EXCEPT_DIRS = frozenset({Path("serve"), Path("scale")})

#: The only directory (relative to src/repro) allowed to import
#: ``http.server``.
HTTP_SERVER_DIR = Path("obs")


def find_prints(tree: ast.AST) -> list[tuple[int, str]]:
    return [
        (node.lineno, "print() call")
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "print"
    ]


def _is_silent_body(body: list[ast.stmt]) -> bool:
    """Whether an except body does nothing but swallow."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
        for stmt in body
    )


def find_silent_excepts(tree: ast.AST) -> list[tuple[int, str]]:
    offenders: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            offenders.append(
                (node.lineno, "bare `except:` (name the exception type)")
            )
        elif (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
            and _is_silent_body(node.body)
        ):
            offenders.append(
                (
                    node.lineno,
                    f"`except {node.type.id}: pass` swallows the fault — "
                    "count, log or re-raise it",
                )
            )
    return offenders


def find_http_server_imports(tree: ast.AST) -> list[tuple[int, str]]:
    """``http.server`` reached any way: ``import http.server``,
    ``from http.server import ...``, or ``from http import server``."""
    offenders: list[tuple[int, str]] = []
    message = (
        "http.server import outside src/repro/obs/ — the live endpoint "
        "lives in repro.obs.server; talk to it instead"
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name == "http.server" or alias.name.startswith("http.server.")
                for alias in node.names
            ):
                offenders.append((node.lineno, message))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "http.server" or module.startswith("http.server."):
                offenders.append((node.lineno, message))
            elif module == "http" and any(
                alias.name == "server" for alias in node.names
            ):
                offenders.append((node.lineno, message))
    return offenders


def main() -> int:
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        tree = ast.parse(path.read_text(), filename=str(path))
        findings: list[tuple[int, str]] = []
        if relative not in ALLOWED:
            findings.extend(find_prints(tree))
        if any(strict in relative.parents for strict in STRICT_EXCEPT_DIRS):
            findings.extend(find_silent_excepts(tree))
        if HTTP_SERVER_DIR not in relative.parents:
            findings.extend(find_http_server_imports(tree))
        for lineno, message in sorted(findings):
            offenders.append(f"src/repro/{relative}:{lineno}: {message}")
    if offenders:
        print("\n".join(offenders))
        print(f"\n{len(offenders)} lint finding(s)")
        return 1
    print(
        "lint-obs: no stray print() calls in src/repro; "
        "no silent excepts in src/repro/serve or src/repro/scale; "
        "no http.server imports outside src/repro/obs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
