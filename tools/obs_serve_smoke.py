#!/usr/bin/env python
"""Obs-plane crash drill (``make obs-serve-smoke``): scrape → kill -9 →
resume → counters monotone.

The drill exercises the live observability plane end-to-end through the
real CLI, in under a minute:

1. simulate a small fleet, record its reading stream;
2. start ``repro serve --obs-port`` throttled, with checkpointing on;
3. poll ``/health`` until the endpoint answers, then scrape all three
   endpoints — ``/metrics`` must round-trip through the strict
   exposition parser while the daemon is scoring;
4. the moment the first window checkpoint commits, ``kill -9`` the
   daemon and record the last pre-checkpoint counter values;
5. ``repro serve --resume --obs-port`` (still throttled), scrape again
   mid-run and assert every counter resumed at or above its
   pre-checkpoint value — the continuity contract;
6. let the resumed daemon finish and check it exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

SERVE_START, END, WINDOW = 300, 360, 30
WATCHED = (
    "serve_readings_ingested_total",
    "serve_windows_scored_total",
    "serve_ticks_total",
)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _run(argv: list[str]) -> None:
    env = dict(os.environ, PYTHONPATH=SRC)
    subprocess.run(argv, check=True, env=env, cwd=REPO)


def _get(url: str, timeout: float = 2.0):
    """(status, body) — 503s are answers here, not errors."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


def _counters(metrics_text: str) -> dict[str, float]:
    from tests.obs.promparse import validate_exposition

    families = validate_exposition(metrics_text)
    return {
        name: families[name].samples[0].value
        for name in WATCHED
        if name in families and families[name].samples
    }


def _wait_alive(port: int, daemon: subprocess.Popen, what: str) -> None:
    deadline = time.monotonic() + 45
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            raise SystemExit(
                f"{what} daemon exited before its endpoint answered "
                f"(code {daemon.returncode})"
            )
        try:
            status, _ = _get(f"http://127.0.0.1:{port}/health")
        except (urllib.error.URLError, OSError):
            time.sleep(0.05)
            continue
        if status in (200, 503):
            return
        time.sleep(0.05)
    raise SystemExit(f"{what} /health never answered on port {port}")


def main() -> int:
    started = time.monotonic()
    sys.path.insert(0, SRC)
    sys.path.insert(0, str(REPO))  # tests.obs.promparse, the strict parser

    with tempfile.TemporaryDirectory(prefix="obs-serve-smoke-") as tmp:
        tmp = Path(tmp)
        data, stream = tmp / "data", tmp / "stream.jsonl"
        ckpt, sink = tmp / "ckpt", tmp / "alarms.jsonl"
        port = _free_port()

        _run([sys.executable, "-m", "repro", "simulate", str(data),
              "--vendor", "I=80", "--horizon-days", "420",
              "--failure-boost", "25", "--seed", "17"])
        _run([sys.executable, "-m", "repro", "replay", str(data), str(stream),
              "--end-day", str(END)])

        serve_argv = [
            sys.executable, "-m", "repro", "serve", str(data),
            "--input", str(stream),
            "--serve-start-day", str(SERVE_START),
            "--window-days", str(WINDOW), "--end-day", str(END),
            "--checkpoint-dir", str(ckpt), "--alarms-out", str(sink),
            "--throttle-seconds", "0.12",
            "--throttle-from-day", str(SERVE_START),
        ]
        env = dict(os.environ, PYTHONPATH=SRC)
        daemon = subprocess.Popen(
            serve_argv + ["--obs-port", str(port)], env=env, cwd=REPO
        )
        pre_checkpoint: dict[str, float] = {}
        try:
            _wait_alive(port, daemon, "serve")

            # All three endpoints answer while the daemon is scoring,
            # and /metrics satisfies the strict exposition parser.
            status, metrics_text = _get(f"http://127.0.0.1:{port}/metrics")
            assert status == 200, f"/metrics returned {status}"
            pre_checkpoint = _counters(metrics_text)
            missing = [n for n in WATCHED if n not in pre_checkpoint]
            assert not missing, f"/metrics lacks serve families: {missing}"
            status, body = _get(f"http://127.0.0.1:{port}/status")
            assert status == 200 and "watermark" in json.loads(body)
            status, body = _get(f"http://127.0.0.1:{port}/health")
            assert json.loads(body)["alive"] is True
            print(f"obs-serve-smoke: live scrape OK {pre_checkpoint}")

            # Keep the freshest scrape that predates the checkpoint:
            # everything in it is <= the checkpointed registry snapshot.
            deadline = time.monotonic() + 45
            while time.monotonic() < deadline:
                if (ckpt / "manifest.json").exists():
                    break
                status, metrics_text = _get(
                    f"http://127.0.0.1:{port}/metrics"
                )
                if status == 200 and not (ckpt / "manifest.json").exists():
                    pre_checkpoint = _counters(metrics_text)
                if daemon.poll() is not None:
                    raise SystemExit(
                        "daemon exited before its first checkpoint "
                        f"(code {daemon.returncode})"
                    )
                time.sleep(0.05)
            else:
                raise SystemExit("daemon never committed a checkpoint")
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=10)
        finally:
            if daemon.poll() is None:
                daemon.kill()
        print(
            f"obs-serve-smoke: daemon killed -9 (pid {daemon.pid}), "
            f"pre-checkpoint counters {pre_checkpoint}"
        )

        resume_port = _free_port()
        resumed = subprocess.Popen(
            serve_argv + ["--resume", "--obs-port", str(resume_port)],
            env=env, cwd=REPO,
        )
        try:
            _wait_alive(resume_port, resumed, "resumed")
            status, metrics_text = _get(
                f"http://127.0.0.1:{resume_port}/metrics", timeout=5
            )
            assert status == 200, f"resumed /metrics returned {status}"
            post = _counters(metrics_text)
            for name, before in pre_checkpoint.items():
                after = post.get(name, 0.0)
                assert after >= before, (
                    f"counter {name} went backwards across kill -9: "
                    f"{before} -> {after}"
                )
            print(f"obs-serve-smoke: counters monotone after resume {post}")
            returncode = resumed.wait(timeout=60)
            assert returncode == 0, f"resumed daemon exited {returncode}"
        finally:
            if resumed.poll() is None:
                resumed.kill()

        elapsed = time.monotonic() - started
        print(
            "obs-serve-smoke PASS: parser-valid live scrape, "
            f"monotone counters across kill -9 + resume, {elapsed:.1f}s"
        )
        assert elapsed < 60, (
            f"obs-serve-smoke exceeded its 60s budget: {elapsed:.1f}s"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
