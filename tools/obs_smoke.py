#!/usr/bin/env python
"""Observability smoke check (``make obs-smoke``).

Runs a tiny simulate → train → monitor sequence through the real CLI
with ``--trace --metrics-out --run-dir``, then verifies the whole
observability surface end to end:

* both run manifests validate against the checked-in JSON schema;
* the train span tree covers the pipeline stages (≥ 6 spans);
* the monitor manifest carries alarm / window counters;
* the metrics exports (JSONL and Prometheus text) parse.

Exits non-zero with a reason on any failure. Runs in a temporary
directory; nothing is left behind.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cli_main
from repro.obs import load_manifest, validate_manifest

REQUIRED_TRAIN_SPANS = {
    "train",
    "load_dataset",
    "pipeline.fit",
    "feature_engineering",
    "labeling",
    "sampling",
    "training",
}


def fail(reason: str) -> None:
    print(f"obs-smoke: FAIL — {reason}")
    sys.exit(1)


def check_manifest(run_dir: Path, command: str) -> dict:
    manifest = load_manifest(run_dir)
    errors = validate_manifest(manifest)
    if errors:
        fail(f"{command} manifest invalid: {errors}")
    if manifest["command"] != command or manifest["status"] != "ok":
        fail(f"{command} manifest records {manifest['command']}/{manifest['status']}")
    return manifest


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        root = Path(tmp)
        fleet = root / "fleet"
        code = cli_main(
            [
                "simulate", str(fleet),
                "--vendor", "I=120",
                "--horizon-days", "200",
                "--failure-boost", "30",
                "--seed", "5",
            ]
        )
        if code != 0:
            fail(f"simulate exited {code}")

        train_run = root / "train-run"
        metrics_out = root / "metrics.jsonl"
        code = cli_main(
            [
                "train", str(fleet),
                "--train-end-day", "140",
                "--eval-end-day", "200",
                "--trace",
                "--metrics-out", str(metrics_out),
                "--run-dir", str(train_run),
            ]
        )
        if code != 0:
            fail(f"train exited {code}")

        manifest = check_manifest(train_run, "train")
        span_names = {record["name"] for record in manifest["spans"]}
        missing = REQUIRED_TRAIN_SPANS - span_names
        if missing:
            fail(f"train span tree missing {sorted(missing)}")
        if len(manifest["spans"]) < 6:
            fail(f"train span tree has only {len(manifest['spans'])} spans")
        if not manifest["annotations"].get("config_hash"):
            fail("train manifest lacks config_hash annotation")
        if not manifest["annotations"].get("dataset_fingerprint"):
            fail("train manifest lacks dataset_fingerprint annotation")

        for line in metrics_out.read_text().splitlines():
            json.loads(line)
        prom = (train_run / "metrics.prom").read_text()
        if "# TYPE forest_trees_fitted_total counter" not in prom:
            fail("prometheus snapshot missing forest_trees_fitted_total")

        monitor_run = root / "monitor-run"
        code = cli_main(
            [
                "monitor", str(fleet),
                "--start-day", "100",
                "--end-day", "200",
                "--window-days", "30",
                "--run-dir", str(monitor_run),
            ]
        )
        if code != 0:
            fail(f"monitor exited {code}")

        manifest = check_manifest(monitor_run, "monitor")
        families = {f["name"]: f for f in manifest["metrics"]}
        windows = families["monitor_windows_scored_total"]["samples"][0]["value"]
        if windows <= 0:
            fail("monitor manifest recorded no scored windows")
        if "n_alarms" not in manifest["results"]:
            fail("monitor manifest lacks n_alarms result")

    print("obs-smoke: OK — manifests valid, span tree complete, exports parse")
    return 0


if __name__ == "__main__":
    sys.exit(main())
