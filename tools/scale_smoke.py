#!/usr/bin/env python
"""Out-of-core smoke drill (``make scale-smoke``): shard → score → parity.

Exercises the scale subsystem's two headline guarantees end-to-end in
well under a minute:

1. stream-generate a small fleet straight into a 2-shard store
   (``SSDFleet.generate_shards`` → ``ShardWriter``) — the full fleet is
   never materialized on the write path;
2. run the partitioned :class:`~repro.scale.ShardedFleetMonitor` over
   the store under an enforced memory ceiling;
3. materialize the same fleet by concatenating the shards, run the
   in-RAM ``simulate_operation`` on it, and assert **bit-identical**
   alarm records plus matching summary counts;
4. assert peak RSS stayed below the ceiling (the ceiling check itself
   would have raised :class:`~repro.scale.MemoryCeilingExceeded`
   mid-run otherwise — this re-checks the recorded peak explicitly).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

CEILING_MB = 4096
START, END, WINDOW = 150, 300, 50


def main() -> int:
    started = time.monotonic()
    from repro.core.deployment import RetrainPolicy, simulate_operation
    from repro.core.pipeline import MFPAConfig
    from repro.scale import (
        ShardWriter,
        ShardedDataset,
        ShardedFleetMonitor,
        peak_rss_mb,
    )
    from repro.telemetry.dataset import TelemetryDataset
    from repro.telemetry.fleet import FleetConfig, SSDFleet, VendorMix

    fleet_config = FleetConfig(
        mix=VendorMix({"I": 50, "II": 30}),
        horizon_days=300,
        failure_boost=30.0,
        seed=7,
    )
    with tempfile.TemporaryDirectory(prefix="scale-smoke-") as tmp:
        writer = ShardWriter(Path(tmp) / "store")
        for shard in SSDFleet(fleet_config).generate_shards(n_shards=2):
            writer.add_shard(shard)
        store = writer.close()
        assert store.n_shards == 2, store.n_shards
        print(
            f"scale-smoke: wrote {store.n_shards} shards / "
            f"{store.n_drives} drives / {store.n_rows} rows "
            f"(fingerprint {store.fleet_fingerprint})"
        )

        config = MFPAConfig(memory_ceiling_mb=CEILING_MB)
        policy = RetrainPolicy(interval_days=100, min_new_failures=1)
        monitor = ShardedFleetMonitor(store, config=config, policy=policy)
        sharded = monitor.run(START, END, window_days=WINDOW)

        full = TelemetryDataset.concat(
            [dataset for _, dataset in store.iter_shards()]
        )
        batch = simulate_operation(
            full,
            config=MFPAConfig(),
            policy=policy,
            start_day=START,
            end_day=END,
            window_days=WINDOW,
        )

        assert sharded.alarm_records() == batch.alarm_records(), (
            f"alarm mismatch:\n  sharded: {sharded.alarm_records()}\n"
            f"  in-RAM:  {batch.alarm_records()}"
        )
        for field in (
            "n_alarms", "true_alarms", "false_alarms", "missed_failures",
            "lead_times", "unknown_serial_alarms",
        ):
            got, want = getattr(sharded, field), getattr(batch, field)
            assert got == want, (field, got, want)

        peak = peak_rss_mb()
        assert peak < CEILING_MB, (
            f"peak RSS {peak:.0f} MiB breached the {CEILING_MB} MiB ceiling"
        )

        elapsed = time.monotonic() - started
        print(
            f"scale-smoke PASS: {sharded.n_alarms} alarms bit-identical to "
            f"in-RAM ({sharded.true_alarms} true / {sharded.false_alarms} "
            f"false), peak RSS {peak:.0f} MiB < {CEILING_MB} MiB ceiling, "
            f"{elapsed:.1f}s"
        )
        assert elapsed < 120, f"scale-smoke exceeded its budget: {elapsed:.1f}s"
    return 0


if __name__ == "__main__":
    sys.exit(main())
