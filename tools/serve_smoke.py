#!/usr/bin/env python
"""Serve crash drill (``make serve-smoke``): boot → kill -9 → resume → parity.

The drill exercises the daemon's headline guarantees end-to-end through
the real CLI, in under a minute:

1. simulate a small fleet, record its reading stream;
2. start ``repro serve`` as a subprocess with checkpointing on and a
   per-day throttle from the serve start (so the kill window is wide);
3. the moment the first window-boundary checkpoint commits, ``kill -9``
   the daemon — no shutdown handler runs;
4. ``repro serve --resume`` finishes the stream unthrottled;
5. assert the alarm sink holds exactly the alarms the batch
   ``simulate_operation`` produces on the same telemetry — no
   duplicates, no losses, bit-close probabilities.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

SERVE_START, END, WINDOW = 300, 360, 30


def _run(argv: list[str]) -> None:
    env = dict(os.environ, PYTHONPATH=SRC)
    subprocess.run(argv, check=True, env=env, cwd=REPO)


def main() -> int:
    started = time.monotonic()
    sys.path.insert(0, SRC)
    from repro.core.deployment import RetrainPolicy, simulate_operation
    from repro.telemetry.io import load_dataset

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        tmp = Path(tmp)
        data, stream = tmp / "data", tmp / "stream.jsonl"
        ckpt, sink = tmp / "ckpt", tmp / "alarms.jsonl"

        _run([sys.executable, "-m", "repro", "simulate", str(data),
              "--vendor", "I=80", "--horizon-days", "420",
              "--failure-boost", "25", "--seed", "17"])
        _run([sys.executable, "-m", "repro", "replay", str(data), str(stream),
              "--end-day", str(END)])

        serve_argv = [
            sys.executable, "-m", "repro", "serve", str(data),
            "--input", str(stream),
            "--serve-start-day", str(SERVE_START),
            "--window-days", str(WINDOW), "--end-day", str(END),
            "--checkpoint-dir", str(ckpt), "--alarms-out", str(sink),
        ]
        env = dict(os.environ, PYTHONPATH=SRC)
        daemon = subprocess.Popen(
            serve_argv + ["--throttle-seconds", "0.12",
                          "--throttle-from-day", str(SERVE_START)],
            env=env, cwd=REPO,
        )
        try:
            # Kill the instant the first window checkpoint commits.
            deadline = time.monotonic() + 45
            while time.monotonic() < deadline:
                if (ckpt / "manifest.json").exists():
                    break
                if daemon.poll() is not None:
                    raise SystemExit(
                        "daemon exited before its first checkpoint "
                        f"(code {daemon.returncode})"
                    )
                time.sleep(0.05)
            else:
                raise SystemExit("daemon never committed a checkpoint")
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=10)
        finally:
            if daemon.poll() is None:
                daemon.kill()
        print(f"serve-smoke: daemon killed -9 mid-run (pid {daemon.pid})")

        _run(serve_argv + ["--resume"])

        dataset = load_dataset(str(data))
        never = RetrainPolicy(interval_days=10**9, min_new_failures=10**9)
        batch = simulate_operation(
            dataset, policy=never,
            start_day=SERVE_START, end_day=END, window_days=WINDOW,
        )
        expected = batch.alarm_records()
        records = [json.loads(line) for line in sink.read_text().splitlines()]
        actual = sorted((r["serial"], r["day"], r["probability"]) for r in records)

        serials = [serial for serial, _day, _p in actual]
        assert len(serials) == len(set(serials)), (
            f"duplicate alarms after resume: {serials}"
        )
        assert [(s, d) for s, d, _ in actual] == [(s, d) for s, d, _ in expected], (
            f"alarm mismatch:\n  serve: {actual}\n  batch: {expected}"
        )
        for (_, _, p_serve), (_, _, p_batch) in zip(actual, expected):
            assert abs(p_serve - p_batch) < 1e-9, (p_serve, p_batch)

        elapsed = time.monotonic() - started
        print(
            f"serve-smoke PASS: {len(actual)} alarms, batch parity across "
            f"kill -9 + resume, {elapsed:.1f}s"
        )
        assert elapsed < 60, f"serve-smoke exceeded its 60s budget: {elapsed:.1f}s"
    return 0


if __name__ == "__main__":
    sys.exit(main())
